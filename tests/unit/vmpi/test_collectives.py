"""Unit tests for vmpi collectives and communicator management."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import MPIError, run_spmd


def launch(nprocs, main, seed=0, nnodes=8, cpus=8):
    machine = Machine(make_testbox(nnodes=nnodes, cpus_per_node=cpus), seed=seed)
    return run_spmd(machine, nprocs, main)


class TestBcast:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_all_ranks_receive(self, size):
        received = {}

        def main(ctx):
            obj = {"payload": 42} if ctx.rank == 0 else None
            result = yield from ctx.world.bcast(obj, root=0)
            received[ctx.rank] = result

        launch(size, main)
        assert all(received[r] == {"payload": 42} for r in range(size))

    def test_nonzero_root(self):
        received = {}

        def main(ctx):
            obj = "from-2" if ctx.rank == 2 else None
            result = yield from ctx.world.bcast(obj, root=2)
            received[ctx.rank] = result

        launch(5, main)
        assert all(v == "from-2" for v in received.values())

    def test_numpy_payload(self):
        arr = np.arange(1000.0)
        received = {}

        def main(ctx):
            obj = arr if ctx.rank == 0 else None
            result = yield from ctx.world.bcast(obj)
            received[ctx.rank] = result

        launch(4, main)
        for r in range(4):
            np.testing.assert_array_equal(received[r], arr)

    def test_bad_root(self):
        def main(ctx):
            with pytest.raises(MPIError):
                yield from ctx.world.bcast(1, root=10)

        launch(2, main)


class TestGatherScatter:
    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_gather_collects_by_rank(self, size):
        out = {}

        def main(ctx):
            result = yield from ctx.world.gather(ctx.rank * 10, root=0)
            out[ctx.rank] = result

        launch(size, main)
        assert out[0] == [r * 10 for r in range(size)]
        for r in range(1, size):
            assert out[r] is None

    def test_scatter_distributes_by_rank(self):
        out = {}

        def main(ctx):
            items = [f"item{i}" for i in range(4)] if ctx.rank == 0 else None
            result = yield from ctx.world.scatter(items, root=0)
            out[ctx.rank] = result

        launch(4, main)
        assert out == {r: f"item{r}" for r in range(4)}

    def test_scatter_wrong_length_raises(self):
        def main(ctx):
            if ctx.rank == 0:
                with pytest.raises(MPIError):
                    yield from ctx.world.scatter([1, 2, 3], root=0)
            else:
                yield from ctx.sleep(0)

        launch(4, main)

    def test_gather_nonzero_root(self):
        out = {}

        def main(ctx):
            result = yield from ctx.world.gather(ctx.rank, root=1)
            out[ctx.rank] = result

        launch(3, main)
        assert out[1] == [0, 1, 2]


class TestReductions:
    def test_allgather(self):
        out = {}

        def main(ctx):
            result = yield from ctx.world.allgather(ctx.rank**2)
            out[ctx.rank] = result

        launch(4, main)
        for r in range(4):
            assert out[r] == [0, 1, 4, 9]

    def test_reduce_sum_default(self):
        out = {}

        def main(ctx):
            result = yield from ctx.world.reduce(ctx.rank + 1, root=0)
            out[ctx.rank] = result

        launch(4, main)
        assert out[0] == 10
        assert out[1] is None

    def test_reduce_custom_op(self):
        out = {}

        def main(ctx):
            result = yield from ctx.world.reduce(ctx.rank, op=max, root=0)
            out[ctx.rank] = result

        launch(5, main)
        assert out[0] == 4

    def test_allreduce(self):
        out = {}

        def main(ctx):
            result = yield from ctx.world.allreduce(1)
            out[ctx.rank] = result

        launch(6, main)
        assert all(v == 6 for v in out.values())

    def test_alltoall(self):
        out = {}

        def main(ctx):
            items = [f"{ctx.rank}->{d}" for d in range(ctx.world.size)]
            result = yield from ctx.world.alltoall(items)
            out[ctx.rank] = result

        launch(3, main)
        for r in range(3):
            assert out[r] == [f"{s}->{r}" for s in range(3)]

    def test_alltoall_wrong_length(self):
        def main(ctx):
            with pytest.raises(MPIError):
                yield from ctx.world.alltoall([1])

        launch(3, main)


class TestBarrier:
    def test_barrier_synchronizes(self):
        times = {}

        def main(ctx):
            yield from ctx.sleep(float(ctx.rank))
            yield from ctx.world.barrier()
            times[ctx.rank] = ctx.now

        launch(4, main)
        # Everyone leaves at or after the slowest arrival (t=3).
        assert all(t >= 3.0 for t in times.values())

    def test_consecutive_collectives_stay_aligned(self):
        out = {}

        def main(ctx):
            a = yield from ctx.world.allreduce(1)
            yield from ctx.world.barrier()
            b = yield from ctx.world.allgather(ctx.rank)
            out[ctx.rank] = (a, b)

        launch(3, main)
        for r in range(3):
            assert out[r] == (3, [0, 1, 2])


class TestSplit:
    def test_split_into_two_groups(self):
        out = {}

        def main(ctx):
            color = ctx.rank % 2
            sub = yield from ctx.world.split(color)
            members = yield from sub.allgather(ctx.rank)
            out[ctx.rank] = (sub.size, sub.rank, members)

        launch(6, main)
        assert out[0] == (3, 0, [0, 2, 4])
        assert out[1] == (3, 0, [1, 3, 5])
        assert out[4] == (3, 2, [0, 2, 4])

    def test_split_with_none_color(self):
        out = {}

        def main(ctx):
            color = 0 if ctx.rank < 2 else None
            sub = yield from ctx.world.split(color)
            if sub is not None:
                yield from sub.barrier()
            out[ctx.rank] = sub

        launch(4, main)
        assert out[2] is None and out[3] is None
        assert out[0] is not None and out[0].size == 2

    def test_split_key_reorders(self):
        out = {}

        def main(ctx):
            # Reverse order via key.
            sub = yield from ctx.world.split(0, key=-ctx.rank)
            out[ctx.rank] = sub.rank

        launch(3, main)
        assert out == {0: 2, 1: 1, 2: 0}

    def test_rocpanda_style_split(self):
        """The client/server split Rocpanda init performs (§4.1)."""
        out = {}

        def main(ctx):
            nprocs = ctx.world.size
            nservers = nprocs // 4
            stride = nprocs // nservers
            is_server = ctx.rank % stride == 0
            sub = yield from ctx.world.split(1 if is_server else 0)
            out[ctx.rank] = ("server" if is_server else "client", sub.size)

        launch(8, main)
        servers = [r for r, (kind, _) in out.items() if kind == "server"]
        assert servers == [0, 4]
        assert out[0][1] == 2  # server comm size
        assert out[1][1] == 6  # client comm size

    def test_dup_gives_independent_message_space(self):
        out = {}

        def main(ctx):
            dup = yield from ctx.world.dup()
            if ctx.rank == 0:
                yield from ctx.world.send("world", dest=1, tag=5)
                yield from dup.send("dup", dest=1, tag=5)
            elif ctx.rank == 1:
                dup_msg, _ = yield from dup.recv(source=0, tag=5)
                world_msg, _ = yield from ctx.world.recv(source=0, tag=5)
                out["msgs"] = (dup_msg, world_msg)
            else:
                yield from ctx.sleep(0)

        launch(3, main)
        assert out["msgs"] == ("dup", "world")


class TestJobMechanics:
    def test_returns_collected_per_rank(self):
        def main(ctx):
            yield from ctx.sleep(0)
            return ctx.rank * 2

        result = launch(4, main)
        assert result.returns == [0, 2, 4, 6]

    def test_compute_times_tracked(self):
        def main(ctx):
            yield from ctx.compute(2.0)

        result = launch(3, main)
        assert all(t == pytest.approx(2.0) for t in result.compute_times)
        assert result.max_compute_time == pytest.approx(2.0)

    def test_wall_time_reported(self):
        def main(ctx):
            yield from ctx.sleep(7.5)

        result = launch(2, main)
        assert result.wall_time == pytest.approx(7.5)

    def test_determinism_same_seed(self):
        def main(ctx):
            yield from ctx.world.barrier()
            yield from ctx.compute(1.0)
            data = yield from ctx.world.allgather(ctx.rank)
            return (ctx.now, tuple(data))

        r1 = launch(4, main, seed=5)
        r2 = launch(4, main, seed=5)
        assert r1.returns == r2.returns
        assert r1.wall_time == r2.wall_time

    def test_rank_rngs_are_independent_streams(self):
        def main(ctx):
            yield from ctx.sleep(0)
            return float(ctx.rng.random())

        result = launch(4, main)
        assert len(set(result.returns)) == 4
