"""Regression tests for the reserved collective tag range (PR 7, S1).

Collectives tag their internal traffic at ``_COLL_TAG_BASE`` and above;
a user message sent with such a tag would be matched by an unrelated
collective receive and corrupt it in an undebuggable way.  The public
point-to-point entry points therefore reject reserved tags eagerly.
"""

import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import ANY_TAG, MPIError, run_spmd
from repro.vmpi.comm import _COLL_TAG_BASE


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(), seed=seed)
    return run_spmd(machine, nprocs, main)


RESERVED_TAGS = [_COLL_TAG_BASE, _COLL_TAG_BASE + 1, _COLL_TAG_BASE + 12345]


class TestReservedTagsRejected:
    @pytest.mark.parametrize("tag", RESERVED_TAGS)
    def test_send_rejects_reserved(self, tag):
        def main(ctx):
            with pytest.raises(MPIError, match="reserved"):
                yield from ctx.world.send("x", dest=1 - ctx.rank, tag=tag)

        launch(2, main)

    @pytest.mark.parametrize("tag", RESERVED_TAGS)
    def test_recv_rejects_reserved(self, tag):
        def main(ctx):
            with pytest.raises(MPIError, match="reserved"):
                yield from ctx.world.recv(source=1 - ctx.rank, tag=tag)

        launch(2, main)

    def test_isend_rejects_reserved(self):
        def main(ctx):
            with pytest.raises(MPIError, match="reserved"):
                ctx.world.isend("x", dest=1 - ctx.rank, tag=_COLL_TAG_BASE)
            yield from ctx.sleep(0)

        launch(2, main)

    def test_irecv_rejects_reserved(self):
        def main(ctx):
            with pytest.raises(MPIError, match="reserved"):
                ctx.world.irecv(source=1 - ctx.rank, tag=_COLL_TAG_BASE)
            yield from ctx.sleep(0)

        launch(2, main)

    def test_negative_tag_rejected(self):
        def main(ctx):
            with pytest.raises(MPIError):
                yield from ctx.world.send("x", dest=1 - ctx.rank, tag=-2)

        launch(2, main)


class TestValidTagsStillWork:
    def test_top_of_user_range_round_trips(self):
        top = _COLL_TAG_BASE - 1
        out = {}

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send("edge", dest=1, tag=top)
            else:
                msg, status = yield from ctx.world.recv(source=0, tag=top)
                out["msg"] = msg
                out["tag"] = status.tag

        launch(2, main)
        assert out == {"msg": "edge", "tag": top}

    def test_any_tag_recv_allowed(self):
        out = {}

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send("any", dest=1, tag=7)
            else:
                msg, _ = yield from ctx.world.recv(source=0, tag=ANY_TAG)
                out["msg"] = msg

        launch(2, main)
        assert out["msg"] == "any"

    def test_collectives_still_use_reserved_range(self):
        """Internal collective traffic is exempt from the user check."""
        out = {}

        def main(ctx):
            yield from ctx.world.barrier()
            total = yield from ctx.world.allreduce(ctx.rank)
            out[ctx.rank] = total

        launch(4, main)
        assert all(v == 6 for v in out.values())
