"""Tree vs linear collective algorithms (PR 7 tentpole).

The binomial/pairwise tree algorithms are the production path; the
linear implementations stay behind ``Comm.collective_algo = "linear"``
as the executable spec.  Both must produce *payload-identical* results
for every size, root, and (non-contiguous) subgroup — only the virtual
timing differs.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import run_spmd
from repro.vmpi.comm import Comm


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=8), seed=seed)
    return run_spmd(machine, nprocs, main)


@pytest.fixture(params=["tree", "linear"])
def algo(request, monkeypatch):
    monkeypatch.setattr(Comm, "collective_algo", request.param)
    return request.param


def test_default_algo_is_tree():
    assert Comm.collective_algo == "tree"


class TestBothAlgosMatchSpec:
    """Each algorithm independently produces the specified result."""

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
    @pytest.mark.parametrize("root_raw", [0, 1, 4])
    def test_gather_rank_ordered_any_root(self, algo, size, root_raw):
        root = root_raw % size
        out = {}

        def main(ctx):
            out[ctx.rank] = yield from ctx.world.gather(
                {"r": ctx.rank}, root=root
            )

        launch(size, main)
        assert out[root] == [{"r": r} for r in range(size)]
        for r in range(size):
            if r != root:
                assert out[r] is None

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
    @pytest.mark.parametrize("root_raw", [0, 2, 7])
    def test_scatter_by_rank_any_root(self, algo, size, root_raw):
        root = root_raw % size
        out = {}

        def main(ctx):
            items = (
                [f"item{i}" for i in range(size)] if ctx.rank == root else None
            )
            out[ctx.rank] = yield from ctx.world.scatter(items, root=root)

        launch(size, main)
        assert out == {r: f"item{r}" for r in range(size)}

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_alltoall_transpose(self, algo, size):
        out = {}

        def main(ctx):
            items = [(ctx.rank, d) for d in range(size)]
            out[ctx.rank] = yield from ctx.world.alltoall(items)

        launch(size, main)
        for r in range(size):
            assert out[r] == [(s, r) for s in range(size)]

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_allgather(self, algo, size):
        out = {}

        def main(ctx):
            out[ctx.rank] = yield from ctx.world.allgather(ctx.rank * 11)

        launch(size, main)
        expected = [r * 11 for r in range(size)]
        assert all(v == expected for v in out.values())

    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_reduce_noncommutative_is_rank_order_fold(self, algo, size):
        """Both algorithms fold gathered values in comm-rank order, so
        even a non-commutative, non-associative op gives the spec's
        left-fold result."""
        op = lambda a, b: a + b  # string concat: order-sensitive
        out = {}

        def main(ctx):
            out[ctx.rank] = yield from ctx.world.reduce(
                f"<{ctx.rank}>", op=op, root=0
            )

        launch(size, main)
        assert out[0] == "".join(f"<{r}>" for r in range(size))

    def test_large_numpy_payload_rendezvous(self, algo):
        """Payloads past the eager threshold ride rendezvous through
        the tree hops without corruption."""
        arrs = {r: np.full(8192, float(r)) for r in range(5)}
        out = {}

        def main(ctx):
            gathered = yield from ctx.world.gather(arrs[ctx.rank], root=2)
            if gathered is not None:
                out["gathered"] = gathered

        launch(5, main)
        for r in range(5):
            np.testing.assert_array_equal(out["gathered"][r], arrs[r])


class TestTreeMatchesLinearExactly:
    """Run both algorithms on identical jobs; payloads must match."""

    @pytest.mark.parametrize("size", [2, 3, 5, 8, 13])
    def test_collective_suite_equivalence(self, size):
        def build(algo_name):
            out = {}

            def main(ctx):
                ctx.world.collective_algo = algo_name
                g = yield from ctx.world.gather((ctx.rank, "g"), root=size - 1)
                s = yield from ctx.world.scatter(
                    [(i, "s") for i in range(size)] if ctx.rank == 1 % size else None,
                    root=1 % size,
                )
                ag = yield from ctx.world.allgather(ctx.rank**2)
                a2a = yield from ctx.world.alltoall(
                    [ctx.rank * 100 + d for d in range(size)]
                )
                red = yield from ctx.world.reduce(
                    [ctx.rank], op=lambda a, b: a + b, root=0
                )
                out[ctx.rank] = (g, s, ag, a2a, red)

            launch(size, main)
            return out

        assert build("tree") == build("linear")


class TestNonContiguousSplitGroups:
    """Tree collectives on subcommunicators whose world ranks are a
    scattered, non-contiguous subset (S3)."""

    def test_gather_on_scattered_group(self, algo):
        # colors: group A = world ranks {0, 3, 5, 6}, B = {1, 2, 4, 7}.
        colors = {0: 0, 3: 0, 5: 0, 6: 0, 1: 1, 2: 1, 4: 1, 7: 1}
        out = {}

        def main(ctx):
            sub = yield from ctx.world.split(colors[ctx.rank])
            sub.collective_algo = ctx.world.collective_algo
            gathered = yield from sub.gather(ctx.rank, root=0)
            out[ctx.rank] = (sub.rank, gathered)

        launch(8, main)
        assert out[0] == (0, [0, 3, 5, 6])
        assert out[1] == (0, [1, 2, 4, 7])
        assert out[6] == (3, None)

    def test_full_suite_on_scattered_group_matches_linear(self):
        colors = {0: 0, 3: 0, 5: 0, 6: 0, 1: 1, 2: 1, 4: 1, 7: 1}

        def build(algo_name):
            out = {}

            def main(ctx):
                sub = yield from ctx.world.split(colors[ctx.rank])
                sub.collective_algo = algo_name
                g = yield from sub.gather(ctx.rank * 3, root=1)
                b = yield from sub.bcast(
                    ("root2", ctx.rank) if sub.rank == 2 else None, root=2
                )
                ag = yield from sub.allgather(ctx.rank)
                a2a = yield from sub.alltoall(
                    [f"{sub.rank}->{d}" for d in range(sub.size)]
                )
                out[ctx.rank] = (g, b, ag, a2a)

            launch(8, main)
            return out

        tree = build("tree")
        linear = build("linear")
        assert tree == linear
        # allgather on group A collects the scattered world ranks.
        assert tree[0][2] == [0, 3, 5, 6]

    def test_nonzero_root_on_scattered_group(self, algo):
        colors = {0: None, 1: 0, 2: None, 3: 0, 4: 0, 5: None, 6: 0}
        out = {}

        def main(ctx):
            sub = yield from ctx.world.split(colors[ctx.rank])
            if sub is None:
                return
            sub.collective_algo = ctx.world.collective_algo
            items = (
                [r * 2 for r in range(sub.size)] if sub.rank == 3 else None
            )
            got = yield from sub.scatter(items, root=3)
            out[ctx.rank] = (sub.rank, got)

        launch(7, main)
        # group = world ranks {1, 3, 4, 6} -> sub ranks 0..3.
        assert out == {1: (0, 0), 3: (1, 2), 4: (2, 4), 6: (3, 6)}
