"""Unit tests for mesh blocks and the partitioner."""

import numpy as np
import pytest

from repro.genx import (
    BlockSpec,
    assignment_stats,
    build_block,
    cylinder_blocks,
    migrate,
    partition_blocks,
)


class TestBlockSpec:
    def test_valid(self):
        s = BlockSpec(0, "structured", nnodes=100, nelems=90)
        assert s.ncells == 90

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            BlockSpec(0, "hexagonal", 10, 10)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            BlockSpec(0, "structured", 0, 10)


class TestBuildBlock:
    @pytest.mark.parametrize("kind", ["structured", "unstructured"])
    def test_sizes_match_spec(self, kind):
        spec = BlockSpec(3, kind, nnodes=120, nelems=80)
        block = build_block(spec, np.random.default_rng(0))
        assert block.nnodes == 120
        assert block.nelems == 80
        assert block.coords.shape == (120, 3)

    def test_connectivity_indices_in_range(self):
        spec = BlockSpec(0, "unstructured", nnodes=50, nelems=40)
        block = build_block(spec, np.random.default_rng(1))
        assert block.conn.min() >= 0
        assert block.conn.max() < 50

    def test_deterministic_given_rng(self):
        spec = BlockSpec(0, "unstructured", nnodes=30, nelems=20)
        b1 = build_block(spec, np.random.default_rng(5))
        b2 = build_block(spec, np.random.default_rng(5))
        np.testing.assert_array_equal(b1.coords, b2.coords)


class TestCylinderBlocks:
    def test_counts_and_ids(self):
        specs = cylinder_blocks(nblocks=20, total_cells=10_000)
        assert len(specs) == 20
        assert [s.block_id for s in specs] == list(range(20))

    def test_total_cells_approximately_preserved(self):
        specs = cylinder_blocks(nblocks=16, total_cells=50_000)
        total = sum(s.ncells for s in specs)
        assert abs(total - 50_000) / 50_000 < 0.05

    def test_sizes_are_irregular(self):
        specs = cylinder_blocks(nblocks=32, total_cells=100_000, irregularity=0.5)
        sizes = {s.ncells for s in specs}
        assert len(sizes) > 10  # genuinely different sizes

    def test_kind_mix(self):
        specs = cylinder_blocks(8, 1000, kind_mix=("unstructured",))
        assert all(s.kind == "unstructured" for s in specs)

    def test_id_base_offsets(self):
        specs = cylinder_blocks(4, 100, id_base=100)
        assert [s.block_id for s in specs] == [100, 101, 102, 103]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            cylinder_blocks(0, 100)
        with pytest.raises(ValueError):
            cylinder_blocks(10, 5)


class TestPartition:
    def test_every_block_assigned_once(self):
        specs = cylinder_blocks(33, 10_000)
        assignment = partition_blocks(specs, 4)
        seen = [s.block_id for bucket in assignment for s in bucket]
        assert sorted(seen) == list(range(33))

    def test_balance_quality(self):
        specs = cylinder_blocks(64, 100_000, irregularity=0.6)
        assignment = partition_blocks(specs, 8)
        stats = assignment_stats(assignment)
        assert stats["imbalance"] < 1.15

    def test_single_proc(self):
        specs = cylinder_blocks(5, 100)
        assignment = partition_blocks(specs, 1)
        assert len(assignment) == 1
        assert len(assignment[0]) == 5

    def test_deterministic(self):
        specs = cylinder_blocks(20, 5000)
        a1 = partition_blocks(specs, 3)
        a2 = partition_blocks(specs, 3)
        assert [[s.block_id for s in b] for b in a1] == [
            [s.block_id for s in b] for b in a2
        ]

    def test_more_procs_than_blocks_rejected(self):
        specs = cylinder_blocks(3, 100)
        with pytest.raises(ValueError):
            partition_blocks(specs, 4)

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            partition_blocks(cylinder_blocks(3, 100), 0)

    def test_buckets_sorted_by_block_id(self):
        specs = cylinder_blocks(12, 3000)
        for bucket in partition_blocks(specs, 3):
            ids = [s.block_id for s in bucket]
            assert ids == sorted(ids)


class TestMigrate:
    def test_moves_block(self):
        specs = cylinder_blocks(6, 600)
        assignment = partition_blocks(specs, 2)
        block_id = assignment[0][0].block_id
        src, dst = migrate(assignment, block_id, 1)
        assert src == 0 and dst == 1
        assert block_id in [s.block_id for s in assignment[1]]
        assert block_id not in [s.block_id for s in assignment[0]]

    def test_move_to_same_proc_is_noop(self):
        specs = cylinder_blocks(4, 400)
        assignment = partition_blocks(specs, 2)
        block_id = assignment[1][0].block_id
        before = [s.block_id for s in assignment[1]]
        migrate(assignment, block_id, 1)
        assert [s.block_id for s in assignment[1]] == before

    def test_unknown_block(self):
        assignment = partition_blocks(cylinder_blocks(4, 400), 2)
        with pytest.raises(KeyError):
            migrate(assignment, 999, 0)

    def test_bad_target(self):
        assignment = partition_blocks(cylinder_blocks(4, 400), 2)
        with pytest.raises(ValueError):
            migrate(assignment, 0, 7)
