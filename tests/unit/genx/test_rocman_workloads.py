"""Unit tests for Rocman orchestration and workload definitions."""

import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import (
    GENxConfig,
    lab_scale_motor,
    run_genx,
    scalability_cylinder,
    snapshot_prefix,
)
from repro.genx.rocman import RocmanConfig
from repro.util import MB


class TestSnapshotPrefix:
    def test_format(self):
        assert snapshot_prefix("genx", 50, "Rocflo") == "genx_000050_rocflo"

    def test_distinct_per_window(self):
        a = snapshot_prefix("p", 1, "Rocflo")
        b = snapshot_prefix("p", 1, "Rocfrac")
        assert a != b


class TestWorkloadSpecs:
    def test_lab_scale_block_set_is_fixed_across_nclients(self):
        wl = lab_scale_motor(scale=0.05, nblocks_fluid=16, nblocks_solid=8)
        b4 = wl.blocks_for(4)
        b16 = wl.blocks_for(16)
        assert [s.block_id for s in b4["fluid"]] == [
            s.block_id for s in b16["fluid"]
        ]
        assert sum(s.ncells for s in b4["fluid"]) == sum(
            s.ncells for s in b16["fluid"]
        )

    def test_lab_scale_snapshot_size_tracks_scale(self):
        small = lab_scale_motor(scale=0.1)
        large = lab_scale_motor(scale=0.2)
        cells_small = sum(s.ncells for s in small.blocks_for(1)["fluid"])
        cells_large = sum(s.ncells for s in large.blocks_for(1)["fluid"])
        assert cells_large / cells_small == pytest.approx(2.0, rel=0.05)

    def test_weak_scaling_blocks_grow_with_clients(self):
        wl = scalability_cylinder(per_client_bytes=1 * MB)
        b2 = wl.blocks_for(2)
        b8 = wl.blocks_for(8)
        assert len(b8["fluid"]) == 4 * len(b2["fluid"])
        cells2 = sum(s.ncells for s in b2["fluid"])
        cells8 = sum(s.ncells for s in b8["fluid"])
        assert cells8 / cells2 == pytest.approx(4.0, rel=0.05)

    def test_burn_blocks_mirror_fluid_blocks(self):
        wl = lab_scale_motor(scale=0.05, nblocks_fluid=10, nblocks_solid=5)
        blocks = wl.blocks_for(1)
        assert len(blocks["burn"]) == len(blocks["fluid"])
        assert [b.block_id for b in blocks["burn"]] == [
            b.block_id for b in blocks["fluid"]
        ]
        for burn, fluid in zip(blocks["burn"], blocks["fluid"]):
            assert burn.nelems <= fluid.nelems

    def test_nsnapshots_counts_initial(self):
        wl = lab_scale_motor(steps=200, snapshot_interval=50)
        assert wl.nsnapshots() == 5

    def test_nominal_step_seconds_sets_compute_scale(self):
        wl = scalability_cylinder(
            per_client_bytes=1 * MB, nominal_step_seconds=10.0
        )
        assert wl.compute_scale > 0


class TestRocmanConfig:
    def test_defaults_match_paper_run(self):
        cfg = RocmanConfig()
        assert cfg.steps == 200
        assert cfg.snapshot_interval == 50
        assert cfg.initial_snapshot


class TestRocmanBehaviour:
    def _tiny(self, **kwargs):
        return lab_scale_motor(
            scale=0.01, nblocks_fluid=8, nblocks_solid=4, **kwargs
        )

    def test_no_initial_snapshot_option(self):
        wl = self._tiny(steps=4, snapshot_interval=4)
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(
                workload=wl, io_mode="rochdf", prefix="ns", initial_snapshot=False
            ),
        )
        assert all(c.rocman.snapshots == 1 for c in result.clients)
        assert not result.machine.disk.listdir("ns_000000")

    def test_zero_steps_runs_only_initial_snapshot(self):
        wl = self._tiny(steps=4, snapshot_interval=4)
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(workload=wl, io_mode="rochdf", prefix="z", steps=0),
        )
        assert all(c.rocman.steps == 0 for c in result.clients)
        assert all(c.rocman.snapshots == 1 for c in result.clients)

    def test_pressure_history_recorded(self):
        wl = self._tiny(steps=10, snapshot_interval=5)
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(workload=wl, io_mode="rochdf", prefix="ph"),
        )
        history = result.clients[0].rocman.pressure_history
        assert len(history) > 0
        assert all(p > 1e5 for p in history)

    def test_compute_and_output_walls_disjoint(self):
        wl = self._tiny(steps=8, snapshot_interval=4)
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(workload=wl, io_mode="rochdf", prefix="dw"),
        )
        c = result.clients[0]
        total = c.rocman.compute_wall_time + c.rocman.output_wall_time
        # The loop wall time is their sum (no double counting).
        assert c.wall_time == pytest.approx(total, rel=0.05)


class TestSolverVariants:
    """GENx allows plugging different solvers per field (§3.1)."""

    @pytest.mark.parametrize("fluid,solid", [
        ("rocflu", "rocfrac"),
        ("rocflo", "rocsolid"),
        ("rocflu", "rocsolid"),
    ])
    def test_alternative_solver_combinations_run(self, fluid, solid):
        wl = lab_scale_motor(
            scale=0.01, nblocks_fluid=8, nblocks_solid=4,
            steps=4, snapshot_interval=4,
        )
        wl.fluid_kind = fluid
        wl.solid_kind = solid
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(workload=wl, io_mode="rochdf", prefix=f"v_{fluid}_{solid}"),
        )
        assert all(c.rocman.steps == 4 for c in result.clients)
        # The snapshot carries the variant window's data.
        files = result.machine.disk.listdir(f"v_{fluid}_{solid}_000004_{fluid}")
        assert files

    @pytest.mark.parametrize("burn_model", ["apn", "zn", "py"])
    def test_burn_model_variants_run(self, burn_model):
        wl = lab_scale_motor(
            scale=0.01, nblocks_fluid=8, nblocks_solid=4,
            steps=4, snapshot_interval=4,
        )
        wl.burn_model = burn_model
        result = run_genx(
            Machine(make_testbox(), seed=0),
            2,
            GENxConfig(workload=wl, io_mode="rochdf", prefix=f"b_{burn_model}"),
        )
        assert all(c.rocman.steps == 4 for c in result.clients)
