"""Unit tests for dynamic load balancing and mesh adaptation."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import (
    LoadBalancer,
    MeshAdaptor,
    cylinder_blocks,
    plan_migrations,
    resize_block,
)
from repro.genx.physics import Rocburn, Rocflo, Rocfrac
from repro.roccom import Roccom
from repro.vmpi import run_spmd


class TestPlanMigrations:
    def _blocks(self, cells_lists):
        return [
            [("W", 100 * r + i, c) for i, c in enumerate(cells)]
            for r, cells in enumerate(cells_lists)
        ]

    def test_balanced_load_produces_empty_plan(self):
        plan = plan_migrations(
            [1.0, 1.0], self._blocks([[100, 100], [100, 100]])
        )
        assert plan.nmoves == 0

    def test_imbalance_triggers_moves(self):
        plan = plan_migrations(
            [3.0, 1.0],
            self._blocks([[300, 300, 300], [100]]),
            threshold=1.10,
        )
        assert plan.nmoves >= 1
        assert all(m.src == 0 and m.dst == 1 for m in plan.moves)

    def test_threshold_gates_rebalancing(self):
        loads = [1.15, 1.0]
        blocks = self._blocks([[120, 120], [100, 100]])
        assert plan_migrations(loads, blocks, threshold=1.30).nmoves == 0
        # Same inputs, tighter threshold: may move.
        plan = plan_migrations(loads, blocks, threshold=1.01)
        assert plan.nmoves >= 0  # must not crash; moves optional here

    def test_max_moves_per_rank_respected(self):
        plan = plan_migrations(
            [10.0, 1.0, 1.0],
            self._blocks([[200] * 10, [10], [10]]),
            max_moves_per_rank=2,
        )
        assert len(plan.outgoing(0)) <= 2

    def test_single_rank_noop(self):
        assert plan_migrations([5.0], self._blocks([[100]])).nmoves == 0

    def test_plan_is_deterministic(self):
        args = ([4.0, 1.0, 2.0], self._blocks([[500, 400, 300], [50], [200, 100]]))
        a = plan_migrations(*args)
        b = plan_migrations(*args)
        assert [(m.block_id, m.src, m.dst) for m in a.moves] == [
            (m.block_id, m.src, m.dst) for m in b.moves
        ]


class TestLoadBalancerRuntime:
    def test_blocks_migrate_and_data_survives(self):
        outcome = {}

        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            # Rank 0 gets 6 blocks, rank 1 gets 2: clearly imbalanced.
            nblocks = 6 if ctx.rank == 0 else 2
            specs = cylinder_blocks(
                nblocks, nblocks * 300, id_base=ctx.rank * 50, seed=ctx.rank
            )
            fluid.setup(com, specs, np.random.default_rng(ctx.rank))
            marker = float(100 + ctx.rank)
            for block in fluid.blocks:
                com.window("Rocflo").get_array("pressure", block.block_id)[:] = marker

            balancer = LoadBalancer(threshold=1.01)
            load = float(fluid.total_cells)  # proxy measured load
            moved = yield from balancer.rebalance(
                ctx, com, ctx.world, [fluid], load
            )
            window = com.window("Rocflo")
            outcome[ctx.rank] = {
                "moved": moved,
                "pane_ids": window.pane_ids(),
                "cells": fluid.total_cells,
                "pressures": {
                    pid: float(window.get_array("pressure", pid)[0])
                    for pid in window.pane_ids()
                },
            }

        machine = Machine(make_testbox(), seed=0)
        run_spmd(machine, 2, main)

        assert outcome[0]["moved"] > 0
        # Every block is somewhere, exactly once.
        all_ids = outcome[0]["pane_ids"] + outcome[1]["pane_ids"]
        assert len(all_ids) == len(set(all_ids)) == 8
        # Balance improved: rank 1 now holds more than its original 2.
        assert len(outcome[1]["pane_ids"]) > 2
        # Migrated data intact: blocks originally on rank 0 carry 100.0.
        for pid, p in outcome[1]["pressures"].items():
            expected = 100.0 if pid < 50 else 101.0
            assert p == expected

    def test_migrated_blocks_keep_advancing(self):
        """Physics kernels must run on migrated blocks without error."""

        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            nblocks = 5 if ctx.rank == 0 else 1
            specs = cylinder_blocks(
                nblocks, nblocks * 200, id_base=ctx.rank * 50, seed=1
            )
            fluid.setup(com, specs, np.random.default_rng(0))
            balancer = LoadBalancer(threshold=1.01)
            yield from balancer.rebalance(
                ctx, com, ctx.world, [fluid], float(fluid.total_cells)
            )
            yield from fluid.advance(ctx, 1e-6, 1)
            return sorted(b.block_id for b in fluid.blocks)

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 2, main)
        assert sum(len(r) for r in result.returns) == 6

    def test_never_strands_a_module(self):
        """A module with a single block never donates it."""

        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            specs = cylinder_blocks(1, 5000 if ctx.rank == 0 else 100,
                                    id_base=ctx.rank * 50, seed=2)
            fluid.setup(com, specs, np.random.default_rng(0))
            balancer = LoadBalancer(threshold=1.01)
            moved = yield from balancer.rebalance(
                ctx, com, ctx.world, [fluid], float(fluid.total_cells)
            )
            return (moved, len(fluid.blocks))

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 2, main)
        assert all(nblocks == 1 for _, nblocks in result.returns)


class TestResizeBlock:
    def _setup(self):
        com = Roccom()
        solid = Rocfrac()
        specs = cylinder_blocks(1, 200, kind_mix=("unstructured",))
        solid.setup(com, specs, np.random.default_rng(0))
        return com, solid, solid.blocks[0]

    def test_shrink_truncates(self):
        com, solid, block = self._setup()
        window = com.window("Rocfrac")
        before = window.get_array("stress", block.block_id).copy()
        old_cells = solid.total_cells
        resize_block(com, solid, block, new_nnodes=30, new_nelems=50)
        after = window.get_array("stress", block.block_id)
        assert after.shape == (50, 6)
        np.testing.assert_array_equal(after, before[:50])
        assert solid.total_cells == old_cells - (before.shape[0] - 50)

    def test_grow_extends(self):
        com, solid, block = self._setup()
        window = com.window("Rocfrac")
        old_ne = block.conn.shape[0]
        resize_block(com, solid, block, new_nnodes=100, new_nelems=old_ne + 40)
        assert window.get_array("stress", block.block_id).shape[0] == old_ne + 40
        # Connectivity stays within the new node range.
        conn = window.get_array("conn", block.block_id)
        assert conn.max() < 100

    def test_invalid_sizes_rejected(self):
        com, solid, block = self._setup()
        with pytest.raises(ValueError):
            resize_block(com, solid, block, 0, 10)

    def test_kernel_runs_after_resize(self):
        com, solid, block = self._setup()
        resize_block(com, solid, block, 40, 60)
        window = com.window("Rocfrac")
        solid.kernel(window, block, 1e-6, 1)  # must not raise


class TestMeshAdaptor:
    def _setup(self):
        com = Roccom()
        fluid, solid, burn = Rocflo(), Rocfrac(), Rocburn()
        rng = np.random.default_rng(0)
        fluid.setup(com, cylinder_blocks(2, 600, seed=1), rng)
        solid.setup(
            com, cylinder_blocks(2, 300, kind_mix=("unstructured",), seed=2), rng
        )
        burn.setup(
            com, cylinder_blocks(2, 100, kind_mix=("unstructured",), seed=3), rng
        )
        return com, fluid, solid, burn

    def test_no_regression_no_change(self):
        com, fluid, solid, burn = self._setup()
        adaptor = MeshAdaptor(fluid, solid, burn, interval=1)
        # burn_distance is all zeros initially.
        list(adaptor.hook(None, com, None, step=1))
        assert adaptor.stats.passes == 0

    def test_regression_shrinks_solid_grows_fluid(self):
        def main(ctx):
            com, fluid, solid, burn = self._setup()
            window = com.window("Rocburn")
            for block in burn.blocks:
                window.get_array("burn_distance", block.block_id)[:] = 0.01
            adaptor = MeshAdaptor(fluid, solid, burn, interval=1)
            before_solid = solid.total_cells
            before_fluid = fluid.total_cells
            yield from adaptor.hook(ctx, com, ctx.world, step=1)
            return (
                adaptor.stats.passes,
                before_solid - solid.total_cells,
                fluid.total_cells - before_fluid,
            )

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 1, main)
        passes, removed, added = result.returns[0]
        assert passes == 1
        assert removed > 0
        assert added > 0

    def test_interval_respected(self):
        com, fluid, solid, burn = self._setup()
        window = com.window("Rocburn")
        for block in burn.blocks:
            window.get_array("burn_distance", block.block_id)[:] = 0.01
        adaptor = MeshAdaptor(fluid, solid, burn, interval=10)
        list(adaptor.hook(None, com, None, step=3))  # not a multiple of 10
        assert adaptor.stats.passes == 0

    def test_min_cells_floor(self):
        def main(ctx):
            com, fluid, solid, burn = self._setup()
            window = com.window("Rocburn")
            adaptor = MeshAdaptor(
                fluid, solid, burn, interval=1, change_fraction=0.9, min_cells=4
            )
            for epoch in range(1, 6):
                for block in burn.blocks:
                    window.get_array("burn_distance", block.block_id)[:] = (
                        0.01 * epoch
                    )
                yield from adaptor.hook(ctx, com, ctx.world, step=epoch)
            return min(b.conn.shape[0] for b in solid.blocks)

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 1, main)
        assert result.returns[0] >= 4
