"""Unit tests for the GENx physics modules, Rocblas, and Rocface."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import BlockSpec, Rocface, cylinder_blocks, rocblas
from repro.genx.physics import (
    BURN_MODELS,
    Rocburn,
    Rocflo,
    Rocflu,
    Rocfrac,
    Rocsolid,
    apn_rate,
    py_rate,
    zn_rate,
)
from repro.roccom import Roccom
from repro.vmpi import run_spmd

ALL_MODULES = [Rocflo, Rocflu, Rocfrac, Rocsolid]


def setup_module_with_blocks(module_cls, nblocks=3, cells=600, **kwargs):
    com = Roccom()
    module = module_cls(**kwargs)
    kind = "structured" if module.nodes_per_elem() == 8 else "unstructured"
    specs = cylinder_blocks(nblocks, cells, kind_mix=(kind,))
    module.setup(com, specs, np.random.default_rng(0))
    return com, module


class TestPhysicsModules:
    @pytest.mark.parametrize("module_cls", ALL_MODULES + [Rocburn])
    def test_setup_registers_panes_and_arrays(self, module_cls):
        com, module = setup_module_with_blocks(module_cls)
        window = com.window(module.window_name)
        assert window.npanes == 3
        for pane in window.panes():
            assert window.has_array("coords", pane.id)
            assert window.has_array("conn", pane.id)

    @pytest.mark.parametrize("module_cls", ALL_MODULES + [Rocburn])
    def test_kernel_keeps_fields_finite(self, module_cls):
        com, module = setup_module_with_blocks(module_cls)
        window = com.window(module.window_name)
        for step in range(1, 30):
            for block in module.blocks:
                module.kernel(window, block, 1e-6, step)
        for pane in window.panes():
            for name in window.attribute_names():
                if window.has_array(name, pane.id):
                    assert np.all(np.isfinite(window.get_array(name, pane.id)))

    @pytest.mark.parametrize("module_cls", ALL_MODULES)
    def test_fields_actually_evolve(self, module_cls):
        com, module = setup_module_with_blocks(module_cls)
        window = com.window(module.window_name)
        if module_cls in (Rocfrac, Rocsolid):
            module.apply_traction(module.blocks[0].block_id, 1e6)
            probe_attr = "displacement"
        else:
            probe_attr = "pressure"
        before = window.get_array(probe_attr, module.blocks[0].block_id).copy()
        for step in range(1, 10):
            for block in module.blocks:
                module.kernel(window, block, 1e-6, step)
        after = window.get_array(probe_attr, module.blocks[0].block_id)
        assert not np.array_equal(before, after)

    def test_total_cells_and_step_cost(self):
        com, module = setup_module_with_blocks(Rocflo, nblocks=2, cells=500)
        assert module.total_cells == sum(b.nelems for b in module.blocks)
        assert module.nominal_step_cost() == pytest.approx(
            module.cost_per_cell * module.total_cells
        )

    def test_advance_charges_virtual_time(self):
        def main(ctx):
            com = Roccom(ctx)
            module = Rocflo()
            module.setup(com, cylinder_blocks(2, 500), np.random.default_rng(0))
            yield from module.advance(ctx, 1e-6, 1)
            return ctx.now

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 1, main)
        assert result.returns[0] == pytest.approx(Rocflo.cost_per_cell * 500, rel=0.1)


class TestRocburn:
    def test_burn_models_all_positive(self):
        p = np.array([2e6, 6e6, 9e6])
        ts = np.array([650.0, 700.0, 800.0])
        for name, fn in BURN_MODELS.items():
            rates = fn(p, ts)
            assert np.all(rates > 0), name

    def test_apn_increases_with_pressure(self):
        lo = apn_rate(np.array([1e6]), np.array([700.0]))
        hi = apn_rate(np.array([9e6]), np.array([700.0]))
        assert hi > lo

    def test_zn_sensitive_to_surface_temperature(self):
        cold = zn_rate(np.array([6e6]), np.array([600.0]))
        hot = zn_rate(np.array([6e6]), np.array([900.0]))
        assert hot > cold

    def test_py_arrhenius_form(self):
        cold = py_rate(np.array([6e6]), np.array([500.0]))
        hot = py_rate(np.array([6e6]), np.array([900.0]))
        assert hot > cold

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            Rocburn(model="magic")

    def test_ignition_spreads_over_time(self):
        com, module = setup_module_with_blocks(Rocburn, nblocks=1, cells=300)
        window = com.window(module.window_name)
        f0 = module.fraction_ignited()
        for step in range(1, 200):
            for block in module.blocks:
                module.kernel(window, block, 1e-6, step)
        f1 = module.fraction_ignited()
        assert 0 < f0 < 1
        assert f1 > f0

    def test_unignited_elements_do_not_burn(self):
        com, module = setup_module_with_blocks(Rocburn, nblocks=1, cells=300)
        window = com.window(module.window_name)
        bid = module.blocks[0].block_id
        for block in module.blocks:
            module.kernel(window, block, 1e-6, 1)
        rate = window.get_array("burn_rate", bid)
        ignited = window.get_array("ignited", bid)
        assert np.all(rate[ignited == 0] == 0.0)

    def test_burn_distance_monotonic(self):
        com, module = setup_module_with_blocks(Rocburn, nblocks=1, cells=100)
        window = com.window(module.window_name)
        bid = module.blocks[0].block_id
        prev = window.get_array("burn_distance", bid).copy()
        for step in range(1, 50):
            module.kernel(window, module.blocks[0], 1e-6, step)
            cur = window.get_array("burn_distance", bid)
            assert np.all(cur >= prev)
            prev = cur.copy()


class TestRocblas:
    def make(self):
        com, module = setup_module_with_blocks(Rocfrac, nblocks=2, cells=400)
        return com, module

    def test_axpy(self):
        com, module = self.make()
        w = module.window_name
        bid = module.blocks[0].block_id
        com.window(w).get_array("velocity", bid)[:] = 1.0
        rocblas.axpy(com, 2.0, f"{w}.velocity", f"{w}.displacement")
        np.testing.assert_allclose(com.window(w).get_array("displacement", bid), 2.0)

    def test_scale(self):
        com, module = self.make()
        w = module.window_name
        bid = module.blocks[0].block_id
        com.window(w).get_array("velocity", bid)[:] = 3.0
        rocblas.scale(com, 0.5, f"{w}.velocity")
        np.testing.assert_allclose(com.window(w).get_array("velocity", bid), 1.5)

    def test_copy_attr(self):
        com, module = self.make()
        w = module.window_name
        bid = module.blocks[0].block_id
        com.window(w).get_array("velocity", bid)[:] = 7.0
        rocblas.copy_attr(com, f"{w}.velocity", f"{w}.displacement")
        np.testing.assert_allclose(com.window(w).get_array("displacement", bid), 7.0)

    def test_local_dot(self):
        com, module = self.make()
        w = module.window_name
        for block in module.blocks:
            com.window(w).get_array("velocity", block.block_id)[:] = 2.0
        total_entries = sum(b.nnodes * 3 for b in module.blocks)
        assert rocblas.local_dot(com, f"{w}.velocity") == pytest.approx(
            4.0 * total_entries
        )

    def test_axpy_shape_mismatch(self):
        com, module = self.make()
        w = module.window_name
        with pytest.raises(ValueError):
            rocblas.axpy(com, 1.0, f"{w}.stress", f"{w}.velocity")

    def test_global_dot_across_ranks(self):
        def main(ctx):
            com = Roccom(ctx)
            module = Rocfrac()
            specs = cylinder_blocks(
                2, 200, kind_mix=("unstructured",), id_base=ctx.rank * 10
            )
            module.setup(com, specs, np.random.default_rng(0))
            w = module.window_name
            for block in module.blocks:
                com.window(w).get_array("velocity", block.block_id)[:] = 1.0
            result = yield from rocblas.global_dot(com, ctx.world, f"{w}.velocity")
            local = rocblas.local_dot(com, f"{w}.velocity")
            return (local, result)

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 2, main)
        locals_, globals_ = zip(*result.returns)
        assert globals_[0] == pytest.approx(sum(locals_))
        assert globals_[0] == globals_[1]


class TestRocface:
    def test_transfer_applies_pressure(self):
        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            solid = Rocfrac()
            burn = Rocburn()
            fluid.setup(com, cylinder_blocks(2, 400), np.random.default_rng(0))
            solid.setup(
                com,
                cylinder_blocks(2, 200, kind_mix=("unstructured",)),
                np.random.default_rng(1),
            )
            burn.setup(
                com,
                cylinder_blocks(2, 100, kind_mix=("unstructured",)),
                np.random.default_rng(2),
            )
            face = Rocface(fluid, solid, burn)
            pressure = yield from face.transfer(ctx, com, ctx.world, 1)
            t = com.window("Rocfrac").get_array("traction", solid.blocks[0].block_id)
            bc = com.window("Rocburn").get_array(
                "pressure_bc", burn.blocks[0].block_id
            )
            return (pressure, float(t[0]), float(bc[0]))

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 2, main)
        for pressure, traction, bc in result.returns:
            assert pressure == pytest.approx(traction)
            assert pressure == pytest.approx(bc)
            assert pressure > 1e6  # chamber-pressure magnitude

    def test_transfer_is_globally_consistent(self):
        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            solid = Rocfrac()
            fluid.setup(
                com,
                cylinder_blocks(2, 300, id_base=10 * ctx.rank, seed=ctx.rank),
                np.random.default_rng(ctx.rank),
            )
            solid.setup(
                com,
                cylinder_blocks(
                    1, 100, kind_mix=("unstructured",), id_base=10 * ctx.rank
                ),
                np.random.default_rng(ctx.rank + 5),
            )
            face = Rocface(fluid, solid)
            pressure = yield from face.transfer(ctx, com, ctx.world, 1)
            return pressure

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 3, main)
        assert len(set(result.returns)) == 1  # same global pressure everywhere
