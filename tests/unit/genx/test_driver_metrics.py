"""Unit tests for GENxRunResult metric aggregation."""

import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.util import MB


@pytest.fixture(scope="module")
def results():
    wl = lab_scale_motor(
        scale=0.02, nblocks_fluid=12, nblocks_solid=6, steps=8,
        snapshot_interval=4,
    )
    out = {}
    for mode, nprocs, nservers in (
        ("rochdf", 3, 0),
        ("trochdf", 3, 0),
        ("rocpanda", 4, 1),
    ):
        out[mode] = run_genx(
            Machine(make_testbox(), seed=2),
            nprocs,
            GENxConfig(workload=wl, io_mode=mode, nservers=nservers, prefix="m"),
        )
    return out


class TestMetricAggregation:
    def test_computation_time_is_max_over_clients(self, results):
        r = results["rochdf"]
        assert r.computation_time == max(
            c.rocman.compute_wall_time for c in r.clients
        )

    def test_visible_io_time_is_max_over_clients(self, results):
        r = results["rocpanda"]
        assert r.visible_io_time == max(
            c.rocman.output_wall_time for c in r.clients
        )

    def test_bytes_per_snapshot_consistent_across_modes(self, results):
        """Same workload => same data volume, whatever the I/O service."""
        per_snapshot = {
            mode: r.bytes_written_per_snapshot for mode, r in results.items()
        }
        base = per_snapshot["rochdf"]
        for mode, value in per_snapshot.items():
            # Rocpanda counts wire size (small per-array envelope on
            # top of raw data), so allow a few percent of slack.
            assert value == pytest.approx(base, rel=0.05), mode

    def test_files_created_by_mode(self, results):
        # 3 snapshots x 3 windows x 3 clients for individual I/O.
        assert results["rochdf"].files_created == 27
        assert results["trochdf"].files_created == 27
        # 3 snapshots x 3 windows x 1 server for collective I/O.
        assert results["rocpanda"].files_created == 9

    def test_server_reports_only_in_rocpanda(self, results):
        assert results["rochdf"].servers == []
        assert len(results["rocpanda"].servers) == 1

    def test_wall_time_positive_and_ordered(self, results):
        for r in results.values():
            assert r.wall_time > 0
            assert r.computation_time <= r.wall_time

    def test_client_counts(self, results):
        assert len(results["rochdf"].clients) == 3
        assert len(results["rocpanda"].clients) == 3
