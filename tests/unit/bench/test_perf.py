"""Unit tests for the wall-clock perfbench harness."""

import json

import pytest

from repro.bench.perf import (
    DEFAULT_BASELINE_PATH,
    bench_codec,
    bench_des_events,
    bench_mailbox_backlog,
    bench_mailbox_waiters,
    bench_tier_absorb,
    bench_tier_drain_overlap,
    bench_vmpi_msgrate,
    load_baseline,
    render_perf,
    run_perfbench,
)


class TestMicrobenches:
    def test_des_events_counts_all_events(self):
        out = bench_des_events(nevents=500)
        assert out["ops"] == 500
        assert out["ops_per_sec"] > 0

    @pytest.mark.parametrize("impl", ["indexed", "reference"])
    def test_mailbox_backlog_both_impls(self, impl):
        out = bench_mailbox_backlog(nsources=8, rounds=3, mailbox=impl)
        assert out["ops"] == 24

    @pytest.mark.parametrize("impl", ["indexed", "reference"])
    def test_mailbox_waiters_both_impls(self, impl):
        out = bench_mailbox_waiters(nsources=8, rounds=3, mailbox=impl)
        assert out["ops"] == 24

    @pytest.mark.parametrize("impl", ["indexed", "reference"])
    def test_vmpi_msgrate_both_impls(self, impl):
        out = bench_vmpi_msgrate(nranks=4, nmsgs=3, mailbox=impl)
        assert out["ops"] == 9

    def test_codec_reports_all_three_modes(self):
        out = bench_codec(ndatasets=2, nbytes_each=1 << 12, repeats=2)
        assert set(out) == {"encode", "decode", "decode_zero_copy"}
        for numbers in out.values():
            assert numbers["mb_per_sec"] > 0

    @pytest.mark.parametrize("tier", ["burst", "direct"])
    def test_tier_absorb_both_tiers(self, tier):
        out = bench_tier_absorb(ndatasets=8, repeats=2, tier=tier)
        assert out["ops"] == 16
        assert out["ops_per_sec"] > 0

    def test_tier_drain_overlap_forces_pressure(self):
        # The internal assert verifies spills/evictions happened.
        out = bench_tier_drain_overlap(ndatasets=8, repeats=2)
        assert out["ops"] == 16


class TestSuite:
    def test_payload_shape_and_speedups(self):
        payload = run_perfbench(quick=True, skip_e2e=True)
        assert payload["schema"] == "perfbench-v1"
        assert payload["quick"] is True
        assert "e2e" not in payload
        micro = payload["micro"]
        for impl in ("indexed", "reference"):
            assert f"vmpi_msgrate_{impl}" in micro
        # Feed the run back in as its own baseline: every speedup ~1.
        speed_payload = _with_baseline(dict(payload), payload)
        assert speed_payload["speedup_vs_baseline"]
        for name, s in speed_payload["speedup_vs_baseline"].items():
            assert s == pytest.approx(1.0, abs=1e-6), name

    def test_render_includes_every_benchmark(self):
        payload = {
            "schema": "perfbench-v1",
            "quick": True,
            "sizes": {},
            "micro": {
                "des_events": {"ops": 10, "seconds": 0.1, "ops_per_sec": 100.0},
                "codec_encode": {"mbytes": 1, "repeats": 1, "seconds": 0.5, "mb_per_sec": 2.0},
            },
            "speedup_vs_baseline": {"des_events": 2.5},
        }
        out = render_perf(payload)
        assert "des_events" in out
        assert "codec_encode" in out
        assert "2.5" in out

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_committed_baseline_loads(self):
        baseline = load_baseline(DEFAULT_BASELINE_PATH)
        if baseline is None:
            pytest.skip("baseline not present (fresh checkout)")
        assert baseline["schema"] == "perfbench-v1"
        assert "vmpi_msgrate_indexed" in baseline["micro"]

    def test_payload_is_json_serializable(self):
        payload = {
            "micro": bench_codec(ndatasets=1, nbytes_each=1 << 10, repeats=1),
        }
        json.dumps(payload)


def _with_baseline(payload, baseline):
    """Re-attach speedups the way run_perfbench does, without re-running."""
    from repro.bench.perf import _speedup

    speedups = {}
    base_micro = baseline.get("micro", {})
    for name, numbers in payload["micro"].items():
        s = _speedup(numbers, base_micro.get(name), "ops_per_sec")
        if s is None:
            s = _speedup(numbers, base_micro.get(name), "mb_per_sec")
        if s is not None:
            speedups[name] = s
    payload["speedup_vs_baseline"] = speedups
    return payload
