"""Unit tests for the bench harness: rendering and run policies."""

import os

import pytest

from repro.bench import render_series, render_table
from repro.bench.experiment import bench_runs, bench_scale, repeat_runs, summarize
from repro.cluster import testbox as make_testbox


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(
            ["metric", "16p", "32p"],
            [["compute", 846.64, 393.05], ["io", 51.58, 83.28]],
        )
        lines = out.splitlines()
        assert lines[0].startswith("metric")
        assert "846.6" in out
        assert "-+-" in lines[1]
        # All rows equally wide.
        assert len({len(l) for l in (lines[0], lines[2], lines[3])}) == 1

    def test_title_included(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_none_rendered_as_dash(self):
        out = render_table(["a"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_float_formatting(self):
        out = render_table(["x"], [[0.000123], [12.5], [1234.5]])
        assert "0.000123" in out
        assert "12.50" in out
        assert "1234.5" in out

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestRenderSeries:
    def test_series_columns(self):
        out = render_series(
            "procs", [1, 2], {"tp": [10.0, 20.0], "err": [0.1, 0.2]}
        )
        assert "procs" in out
        assert "tp" in out
        lines = out.splitlines()
        assert lines[2].startswith("1")
        assert "20.00" in lines[3]


class TestEnvKnobs:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.5) == 0.5

    def test_bench_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale(1.0) == 0.25

    def test_bench_runs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RUNS", "7")
        assert bench_runs(3) == 7


class TestRepeatAndSummarize:
    def test_repeat_runs_distinct_seeds(self):
        seen = []

        def run_once(machine, seed):
            seen.append((machine.seed, seed))
            return {"metric": float(seed)}

        out = repeat_runs(make_testbox, run_once, nruns=3, seed_base=10)
        assert [s["metric"] for s in out] == [10.0, 11.0, 12.0]
        assert all(ms == s for ms, s in seen)

    def test_summarize_best(self):
        samples = [{"t": 5.0}, {"t": 3.0}, {"t": 4.0}]
        out = summarize(samples, "best")
        assert out["t"].value == 3.0

    def test_summarize_mean_ci(self):
        samples = [{"t": 1.0}, {"t": 3.0}]
        out = summarize(samples, "mean_ci")
        assert out["t"].value == 2.0
        assert out["t"].halfwidth > 0

    def test_summarize_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            summarize([{"t": 1.0}], "median")
        with pytest.raises(ValueError):
            summarize([], "best")
