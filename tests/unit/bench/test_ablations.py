"""Smoke tests for the ablation studies that gate CI cheaply.

Only the tiny, deterministic ablations run here (the full A1-A6 sweep
is a bench-CLI concern); the point is that the matrices keep their
shape and their headline inequalities hold at toy sizes.
"""

import pytest

from repro.bench.ablations import run_driver_tier_matrix
from repro.bench.fig3a import run_fig3a_partial_read


class TestDriverTierMatrix:
    def test_matrix_shape_and_burst_wins_for_every_driver(self):
        out = run_driver_tier_matrix(ndatasets=50)
        assert set(out) == {"hdf4", "hdf5"}
        for driver, tiers in out.items():
            assert set(tiers) == {"direct", "burst"}
            direct = tiers["direct"]
            burst = tiers["burst"]
            # Direct mode is durable the moment the write returns.
            assert direct["durable_s"] == direct["visible_write_s"]
            # The burst tier collapses visible write time; durability
            # arrives later but never slower than direct's write path.
            assert burst["visible_write_s"] < direct["visible_write_s"]
            assert burst["durable_s"] >= burst["visible_write_s"]

    def test_single_driver_single_tier(self):
        from repro.shdf.drivers import hdf4_driver

        out = run_driver_tier_matrix(
            ndatasets=10, drivers=(hdf4_driver,), tiers=("burst",)
        )
        assert list(out) == ["hdf4"]
        assert list(out["hdf4"]) == ["burst"]


class TestPartialReadModules:
    @pytest.mark.parametrize("module", ["rochdf", "trochdf"])
    def test_sieve_cuts_visible_read_time(self, module):
        pr = run_fig3a_partial_read(
            nprocs=2, nblocks_per_rank=2, nelems=256, module=module
        )
        assert pr["module"] == module
        assert pr["partial_read_s"] < pr["full_read_s"]
        assert pr["partial_read_bytes"] < pr["full_read_bytes"]

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            run_fig3a_partial_read(nprocs=2, module="rocpanda")
