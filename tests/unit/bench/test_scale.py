"""Unit tests for the scaling benchmark harness (PR 7 tentpole)."""

from repro.bench.scale import (
    QUICK_POINTS,
    STRONG_POINTS,
    attach_scale_speedups,
    bench_scale_point,
    check_scale_regressions,
    render_scale,
)
from repro.genx.workloads import lab_scale_motor


def tiny_workload():
    return lab_scale_motor(
        scale=0.002, nblocks_fluid=16, nblocks_solid=8,
        steps=4, snapshot_interval=2,
    )


def make_point(curve_n, host_wall):
    return {
        "nclients": curve_n,
        "nservers": max(1, curve_n // 8),
        "nranks": curve_n + max(1, curve_n // 8),
        "host_wall_s": host_wall,
        "virtual_wall_s": 10.0,
        "computation_s": 2.0,
        "visible_io_s": 0.1,
        "events_processed": 1000,
        "events_per_sec": 1000 / host_wall,
        "max_queue_depth": 40,
    }


def make_payload(points, host_walls, quick=False):
    return {
        "schema": "scalebench-v1",
        "quick": quick,
        "points": list(points),
        "strong": [make_point(n, w) for n, w in zip(points, host_walls)],
        "weak": [make_point(n, w) for n, w in zip(points, host_walls)],
    }


class TestBenchScalePoint:
    def test_reports_both_clocks(self):
        point = bench_scale_point(tiny_workload(), 8, prefix="ts")
        assert point["nclients"] == 8
        assert point["nservers"] == 1
        assert point["nranks"] == 9
        assert point["host_wall_s"] > 0
        assert point["virtual_wall_s"] > 0
        assert point["computation_s"] > 0
        assert point["events_processed"] > 0
        assert point["events_per_sec"] > 0
        assert point["max_queue_depth"] >= 0

    def test_sweep_points(self):
        assert STRONG_POINTS == (64, 128, 256, 512, 1024)
        assert QUICK_POINTS == (128,)


class TestSpeedupAttachment:
    def test_speedups_attach_per_point(self):
        baseline = make_payload([64, 128], [10.0, 20.0])
        payload = make_payload([64, 128], [5.0, 40.0])
        attach_scale_speedups(payload, baseline)
        speedups = payload["speedup_vs_baseline"]
        assert speedups["strong_64"] == 2.0
        assert speedups["strong_128"] == 0.5
        assert speedups["weak_64"] == 2.0
        assert payload["baseline"] is baseline

    def test_mismatched_points_drop_comparison(self):
        baseline = make_payload([64, 128], [10.0, 20.0])
        payload = make_payload([128], [5.0], quick=True)
        attach_scale_speedups(payload, baseline)
        assert "speedup_vs_baseline" not in payload

    def test_none_baseline_is_noop(self):
        payload = make_payload([64], [5.0])
        attach_scale_speedups(payload, None)
        assert "speedup_vs_baseline" not in payload

    def test_missing_point_in_baseline_skipped(self):
        baseline = make_payload([64, 128], [10.0, 20.0])
        baseline["strong"] = baseline["strong"][:1]  # drop 128 from strong
        payload = make_payload([64, 128], [5.0, 10.0])
        attach_scale_speedups(payload, baseline)
        speedups = payload["speedup_vs_baseline"]
        assert "strong_128" not in speedups
        assert speedups["weak_128"] == 2.0


class TestRegressionGate:
    def test_no_regressions_when_faster(self):
        payload = make_payload([64], [5.0])
        payload["speedup_vs_baseline"] = {"strong_64": 1.4, "weak_64": 1.1}
        assert check_scale_regressions(payload) == []

    def test_gate_floor_arithmetic(self):
        payload = make_payload([64], [5.0])
        payload["speedup_vs_baseline"] = {"strong_64": 0.76, "weak_64": 0.74}
        assert check_scale_regressions(payload, threshold=0.25) == [
            ("weak_64", 0.74)
        ]

    def test_no_baseline_means_no_findings(self):
        assert check_scale_regressions(make_payload([64], [5.0])) == []


class TestRender:
    def test_render_lists_every_point(self):
        payload = make_payload([64, 128], [1.0, 2.0])
        payload["speedup_vs_baseline"] = {"strong_64": 1.2}
        text = render_scale(payload)
        assert "strong" in text and "weak" in text
        assert "64" in text and "128" in text
        assert "1.2" in text
