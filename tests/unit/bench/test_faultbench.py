"""Unit tests for the faultbench harness (repro.bench.faults)."""

import numpy as np
import pytest

from repro.bench import render_faults, run_faultbench, scenario_names
from repro.bench.faults import _digest_blocks


class TestScenarioCatalog:
    def test_acceptance_rows_present(self):
        names = scenario_names()
        # The ISSUE acceptance matrix: single-server crash, transient
        # EIO and disk-full must be covered, across all three modules
        # where they apply.
        for required in (
            "server_crash/rocpanda",
            "transient_eio/rocpanda",
            "disk_full/rocpanda",
            "transient_eio/rochdf",
            "disk_full/rochdf",
            "transient_eio/trochdf",
            "disk_full/trochdf",
        ):
            assert required in names
        assert len(names) == len(set(names))

    def test_unknown_only_rejected(self):
        with pytest.raises(ValueError):
            run_faultbench(skip_overhead=True, only=["no_such/row"])


class TestDigest:
    def test_digest_is_order_independent(self):
        a = np.arange(6, dtype=np.float64)
        b = np.ones((2, 3))
        m1 = {1: {"x": a, "y": b}, 2: {"x": b}}
        m2 = {2: {"x": b.copy()}, 1: {"y": b.copy(), "x": a.copy()}}
        assert _digest_blocks(m1) == _digest_blocks(m2)

    def test_digest_sensitive_to_data(self):
        a = np.arange(6, dtype=np.float64)
        assert _digest_blocks({1: {"x": a}}) != _digest_blocks({1: {"x": a + 1}})
        assert _digest_blocks({1: {"x": a}}) != _digest_blocks({2: {"x": a}})


class TestSingleScenario:
    def test_transient_eio_rochdf_recovers(self):
        payload = run_faultbench(
            skip_overhead=True, only=["transient_eio/rochdf"]
        )
        assert payload["schema"] == "faultbench-v1"
        assert "overhead" not in payload
        (row,) = payload["matrix"]
        assert row["scenario"] == "transient_eio"
        assert row["module"] == "rochdf"
        assert row["recovered"] is True
        assert row["runs_identical"] is True
        assert row["digest"] == row["reference_digest"]
        assert row["counters"]["faults"]["eio_injected"] == 2
        assert payload["recovery_rate"] == 1.0
        assert payload["determinism_rate"] == 1.0

    def test_render_mentions_rows_and_rates(self):
        payload = run_faultbench(
            skip_overhead=True, only=["transient_eio/trochdf"]
        )
        text = render_faults(payload)
        assert "transient_eio" in text
        assert "trochdf" in text
        assert "recovery rate" in text
        assert "100.0%" in text
