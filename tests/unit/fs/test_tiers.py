"""Unit tests for the burst-buffer storage tier (repro.fs.tiers)."""

import pytest

from repro.des import Environment
from repro.faults.retry import RetryPolicy
from repro.fs import (
    BurstBufferTier,
    DrainFailedError,
    NFSModel,
    TierConfig,
    VirtualDisk,
    WriteCoalescer,
)
from repro.fs.vfs import FileExists, FileNotFound, TransientIOError
from repro.shdf.drivers import apply_storage_tier


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


def make_tier(env=None, **cfg):
    env = env if env is not None else Environment()
    backing = NFSModel(env)
    tier = BurstBufferTier(env, backing, TierConfig(**cfg) if cfg else None)
    return env, backing, tier


def tier_write(tier, path, data, create=True):
    """Generator: one coalesced write of ``data`` into ``path``."""
    f = tier.disk.create(path, exist_ok=True) if create else tier.disk.open(path)
    c = WriteCoalescer(tier, f, node=None)
    c.add(data)
    yield from c.flush()


class TestAbsorbAndDrain:
    def test_visible_at_memory_speed_durable_later(self):
        env, backing, tier = make_tier()
        data = b"x" * 1_000_000
        marks = {}

        def writer():
            yield from tier_write(tier, "a", data)
            marks["visible"] = env.now
            yield from tier.drain_barrier()
            marks["durable"] = env.now

        drive(env, writer())
        # Absorb at 300 MiB/s beats NFS at 30 MB/s by a wide margin.
        assert marks["visible"] < 0.01
        assert marks["durable"] > marks["visible"]
        assert backing.disk.open("a").read() == data
        assert tier.backlog_bytes == 0
        assert tier.stats.absorbed_bytes == len(data)
        assert tier.stats.drained_bytes == len(data)

    def test_multiple_files_drain_fifo_and_bit_identical(self):
        env, backing, tier = make_tier()
        payloads = {f"f{i}": bytes([i]) * (10_000 + i) for i in range(5)}

        def writer():
            for path, data in payloads.items():
                yield from tier_write(tier, path, data)
            yield from tier.drain_barrier()

        drive(env, writer())
        for path, data in payloads.items():
            assert backing.disk.open(path).read() == data
        assert tier.journal.validate(backing.disk) == []

    def test_drain_chunking(self):
        env, backing, tier = make_tier(drain_chunk_bytes=1024)

        def writer():
            yield from tier_write(tier, "a", b"y" * 10_000)
            yield from tier.drain_barrier()

        drive(env, writer())
        assert backing.disk.open("a").read() == b"y" * 10_000
        assert tier.stats.drain_flushes == 10

    def test_barrier_is_noop_when_clean(self):
        env, backing, tier = make_tier()

        def writer():
            t0 = env.now
            yield env.sleep(0)
            yield from tier.drain_barrier()
            assert env.now == t0

        drive(env, writer())

    def test_interleaved_write_during_drain(self):
        """Appending more while the file drains ends bit-identical."""
        env, backing, tier = make_tier(drain_chunk_bytes=512)

        def writer():
            yield from tier_write(tier, "a", b"1" * 4096)
            # Let a couple of drain flushes happen, then append more.
            yield env.sleep(0.001)
            yield from tier_write(tier, "a", b"2" * 4096)
            yield from tier.drain_barrier()

        drive(env, writer())
        assert backing.disk.open("a").read() == b"1" * 4096 + b"2" * 4096


class TestNamespace:
    def test_open_falls_through_to_backing(self):
        env, backing, tier = make_tier()
        backing.disk.create("cold").append(b"old-bytes")
        assert tier.disk.open("cold").read() == b"old-bytes"
        assert tier.disk.exists("cold")

    def test_listdir_is_union(self):
        env, backing, tier = make_tier()
        backing.disk.create("b_old")
        tier.disk.create("a_new")
        assert tier.disk.listdir() == ["a_new", "b_old"]

    def test_create_exclusive_respects_backing(self):
        env, backing, tier = make_tier()
        backing.disk.create("taken")
        with pytest.raises(FileExists):
            tier.disk.create("taken")

    def test_create_exist_ok_shadows_backing_content(self):
        env, backing, tier = make_tier()
        backing.disk.create("warm").append(b"abc")
        f = tier.disk.create("warm", exist_ok=True)
        assert f.read() == b"abc"
        # The shadowed prefix is already durable: nothing to drain.
        assert tier.backlog_bytes == 0

    def test_unlink_clears_both_levels(self):
        env, backing, tier = make_tier()
        backing.disk.create("x").append(b"1")
        tier.disk.create("x", exist_ok=True)
        tier.disk.unlink("x")
        assert not tier.disk.exists("x")
        assert not backing.disk.exists("x")
        with pytest.raises(FileNotFound):
            tier.disk.unlink("missing")

    def test_truncate_restarts_epoch(self):
        env, backing, tier = make_tier()

        def writer():
            yield from tier_write(tier, "a", b"first" * 100)
            yield from tier.drain_barrier()
            f = tier.disk.open("a")
            f.truncate()
            c = WriteCoalescer(tier, f, node=None)
            c.add(b"second")
            yield from c.flush()
            yield from tier.drain_barrier()

        drive(env, writer())
        assert backing.disk.open("a").read() == b"second"
        assert tier.journal.validate(backing.disk) == []


class TestEvictionAndSpill:
    def test_clean_files_evict_under_pressure(self):
        env, backing, tier = make_tier(
            capacity_bytes=10_000, high_watermark=0.75, low_watermark=0.5
        )

        def writer():
            yield from tier_write(tier, "a", b"a" * 4000)
            yield from tier.drain_barrier()  # "a" fully clean
            yield from tier_write(tier, "b", b"b" * 4000)
            yield from tier.drain_barrier()

        drive(env, writer())
        # Writing "b" crosses the 7500 high watermark; clean "a" evicts.
        assert tier.stats.evictions >= 1
        # Evicted files still read complete through the namespace.
        assert tier.disk.open("a").read() == b"a" * 4000
        assert backing.disk.open("a").read() == b"a" * 4000

    def test_lru_evicts_least_recently_written_first(self):
        env, backing, tier = make_tier(
            capacity_bytes=10_000, high_watermark=0.6, low_watermark=0.45
        )

        def writer():
            yield from tier_write(tier, "old", b"o" * 2000)
            yield from tier_write(tier, "new", b"n" * 2000)
            yield from tier.drain_barrier()
            yield from tier_write(tier, "c", b"c" * 4000)
            yield from tier.drain_barrier()

        drive(env, writer())
        resident = set(tier.disk._files)
        assert "old" not in resident  # LRU went first
        assert backing.disk.open("old").read() == b"o" * 2000

    def test_spill_degrades_to_direct_cost_when_full_of_dirty(self):
        """A tier full of dirty data makes the next write pay backing
        cost (synchronous spill) instead of failing."""
        env, backing, tier = make_tier(capacity_bytes=8_000)
        marks = {}

        def writer():
            yield from tier_write(tier, "a", b"a" * 6000)
            # Tier now holds 6000 dirty bytes; 6000 more exceeds 8000.
            t0 = env.now
            yield from tier_write(tier, "b", b"b" * 6000)
            marks["second_write"] = env.now - t0
            yield from tier.drain_barrier()

        drive(env, writer())
        assert tier.stats.spills >= 1
        # The spill charged real backing time: far beyond pure absorb.
        assert marks["second_write"] > 6000 / tier.config.absorb_bw * 2
        assert backing.disk.open("a").read() == b"a" * 6000
        assert backing.disk.open("b").read() == b"b" * 6000

    def test_evicted_file_rewrite_reregisters(self):
        env, backing, tier = make_tier(
            capacity_bytes=10_000, high_watermark=0.75, low_watermark=0.3
        )

        def writer():
            f = tier.disk.create("a")
            c = WriteCoalescer(tier, f, node=None)
            c.add(b"a" * 4000)
            yield from c.flush()
            yield from tier.drain_barrier()
            yield from tier_write(tier, "b", b"b" * 4000)  # evicts "a"
            yield from tier.drain_barrier()
            # The writer still holds the evicted object; appending
            # through it must re-register it and stay consistent.
            c.add(b"z" * 100)
            yield from c.flush()
            yield from tier.drain_barrier()

        drive(env, writer())
        assert backing.disk.open("a").read() == b"a" * 4000 + b"z" * 100
        assert tier.journal.validate(backing.disk) == []


class TestDrainFaults:
    def test_transient_fault_retried(self):
        env, backing, tier = make_tier(
            retry=RetryPolicy(max_attempts=5, base_delay=1e-4)
        )
        fails = {"n": 2}

        def hook(path, nbytes):
            if fails["n"] > 0:
                fails["n"] -= 1
                raise TransientIOError("injected")

        backing.disk.fault_hook = hook

        def writer():
            yield from tier_write(tier, "a", b"x" * 1000)
            yield from tier.drain_barrier()

        drive(env, writer())
        assert backing.disk.open("a").read() == b"x" * 1000
        assert tier.stats.drain_retries == 2
        assert tier.stats.drain_failures == 0

    def test_exhausted_retries_fail_the_barrier(self):
        env, backing, tier = make_tier(
            retry=RetryPolicy(max_attempts=2, base_delay=1e-4)
        )

        def hook(path, nbytes):
            raise TransientIOError("permanent")

        backing.disk.fault_hook = hook

        def writer():
            yield from tier_write(tier, "a", b"x" * 1000)
            with pytest.raises(DrainFailedError):
                yield from tier.drain_barrier()

        drive(env, writer())
        assert tier.stats.drain_failures == 1

    def test_journal_never_overclaims_mid_drain(self):
        """Crash-consistency invariant: at every instant, the backing
        disk holds at least every byte the journal claims."""
        env, backing, tier = make_tier(drain_chunk_bytes=256)

        def writer():
            yield from tier_write(tier, "a", b"j" * 4096)
            # Poll the invariant while the drain is in progress.
            while tier.backlog_bytes > 0:
                assert tier.journal.validate(backing.disk) == []
                yield env.sleep(1e-4)
            yield from tier.drain_barrier()

        drive(env, writer())
        assert tier.journal.entry("a") == (0, 4096)
        assert tier.journal.validate(backing.disk) == []


class TestSeam:
    def test_apply_storage_tier_direct_is_identity(self):
        env = Environment()

        class FakeMachine:
            pass

        m = FakeMachine()
        m.env = env
        m.fs = NFSModel(env)
        m.disk = m.fs.disk
        before = m.fs
        assert apply_storage_tier(m, "direct") is before
        assert m.fs is before

    def test_apply_storage_tier_burst_wraps_once(self):
        env = Environment()

        class FakeMachine:
            pass

        m = FakeMachine()
        m.env = env
        m.fs = NFSModel(env)
        m.disk = m.fs.disk
        tier = apply_storage_tier(m, "burst")
        assert isinstance(tier, BurstBufferTier)
        assert m.fs is tier
        assert tier.backing.disk is m.disk
        assert apply_storage_tier(m, "burst") is tier  # idempotent

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            apply_storage_tier(object(), "warm")
