"""Unit tests for filesystem timing models."""

import pytest

from repro.des import Environment
from repro.fs import GPFSModel, LocalFSModel, NFSModel
from repro.util import MB


def drive(env, gen):
    """Run a single generator as a process and return elapsed time."""
    start = env.now

    def proc():
        yield from gen

    p = env.process(proc())
    env.run(until=p)
    return env.now - start


class TestNFS:
    def test_single_write_time(self):
        env = Environment()
        fs = NFSModel(env, write_bw=30 * MB, meta_latency=0.0)
        elapsed = drive(env, fs.write(30 * MB))
        assert elapsed == pytest.approx(1.0)

    def test_writes_serialize_through_one_server(self):
        env = Environment()
        fs = NFSModel(env, write_bw=10 * MB, meta_latency=0.0, write_penalty=0.0)

        def writer():
            yield from fs.write(10 * MB)

        procs = [env.process(writer()) for _ in range(4)]
        env.run(until=env.all_of(procs))
        # 4 x 1s writes serialized => 4s aggregate.
        assert env.now == pytest.approx(4.0)

    def test_concurrent_write_demand_degrades_bandwidth(self):
        env = Environment()
        fs = NFSModel(
            env, write_bw=10 * MB, meta_latency=0.0, write_penalty=0.5,
            max_penalty_factor=100.0,
        )

        def writer():
            yield from fs.write(10 * MB)

        procs = [env.process(writer()) for _ in range(4)]
        env.run(until=env.all_of(procs))
        # Demand 4 while serving: each service slower than 1s.
        assert env.now > 4.0

    def test_penalty_factor_is_capped(self):
        env = Environment()
        fs = NFSModel(
            env, write_bw=10 * MB, meta_latency=0.0, write_penalty=10.0,
            max_penalty_factor=2.0,
        )

        def writer():
            yield from fs.write(10 * MB)

        procs = [env.process(writer()) for _ in range(3)]
        env.run(until=env.all_of(procs))
        # First service sees demand 3 but factor capped at 2; demand drops
        # as writers finish: 2s + 2s + 1s = 5s upper bound.
        assert env.now <= 6.0

    def test_reads_run_concurrently(self):
        env = Environment()
        fs = NFSModel(env, read_bw=10 * MB, read_slots=4, meta_latency=0.0)

        def reader():
            yield from fs.read(10 * MB)

        procs = [env.process(reader()) for _ in range(4)]
        env.run(until=env.all_of(procs))
        # 4 concurrent slots: all finish in ~1s.
        assert env.now == pytest.approx(1.0)

    def test_reads_beyond_slots_queue(self):
        env = Environment()
        fs = NFSModel(env, read_bw=10 * MB, read_slots=2, meta_latency=0.0)

        def reader():
            yield from fs.read(10 * MB)

        procs = [env.process(reader()) for _ in range(4)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(2.0)

    def test_metrics_accumulate(self):
        env = Environment()
        fs = NFSModel(env)
        drive(env, fs.write(1 * MB))
        drive(env, fs.read(2 * MB))
        drive(env, fs.meta_op())
        assert fs.metrics.bytes_written == 1 * MB
        assert fs.metrics.bytes_read == 2 * MB
        assert fs.metrics.write_ops == 1
        assert fs.metrics.read_ops == 1
        assert fs.metrics.meta_ops == 1
        assert fs.metrics.write_busy_time > 0

    def test_negative_size_rejected(self):
        env = Environment()
        fs = NFSModel(env)
        with pytest.raises(ValueError):
            drive(env, fs.write(-1))


class TestGPFS:
    def test_stripes_across_servers(self):
        env = Environment()
        fs = GPFSModel(env, nservers=2, server_bw=10 * MB, meta_latency=0.0)

        def writer():
            yield from fs.write(10 * MB)

        procs = [env.process(writer()) for _ in range(2)]
        env.run(until=env.all_of(procs))
        # Two writes land on different servers: parallel, ~1s.
        assert env.now == pytest.approx(1.0)

    def test_queueing_when_servers_busy(self):
        env = Environment()
        fs = GPFSModel(env, nservers=2, server_bw=10 * MB, meta_latency=0.0)

        def writer():
            yield from fs.write(10 * MB)

        procs = [env.process(writer()) for _ in range(4)]
        env.run(until=env.all_of(procs))
        # 4 writes on 2 servers => 2 rounds => 2s.
        assert env.now == pytest.approx(2.0)

    def test_invalid_nservers(self):
        env = Environment()
        with pytest.raises(ValueError):
            GPFSModel(env, nservers=0)

    def test_read_path(self):
        env = Environment()
        fs = GPFSModel(env, nservers=1, server_bw=10 * MB, meta_latency=0.0)
        elapsed = drive(env, fs.read(20 * MB))
        assert elapsed == pytest.approx(2.0)


class TestLocalFS:
    def test_per_node_independence(self):
        env = Environment()
        fs = LocalFSModel(env, bw=10 * MB, meta_latency=0.0)

        def writer(node):
            yield from fs.write(10 * MB, node=node)

        procs = [env.process(writer(n)) for n in ("node0", "node1")]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(1.0)

    def test_same_node_serializes(self):
        env = Environment()
        fs = LocalFSModel(env, bw=10 * MB, meta_latency=0.0)

        def writer():
            yield from fs.write(10 * MB, node="node0")

        procs = [env.process(writer()) for _ in range(2)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(2.0)
