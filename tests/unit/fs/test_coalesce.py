"""Unit tests for the write-coalescing scheduler (repro.fs.coalesce)."""

import numpy as np
import pytest

from repro.des import Environment
from repro.fs import DiskFullError, NFSModel, VirtualDisk, WriteCoalescer
from repro.shdf.codec import encode_dataset
from repro.shdf.drivers import hdf4_driver
from repro.shdf.file import SHDFReader, SHDFWriter
from repro.shdf.model import Dataset


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


class TestAppendMany:
    def test_offsets_and_content_match_sequential_appends(self):
        disk = VirtualDisk()
        one = disk.create("a")
        many = disk.create("b")
        chunks = [b"alpha", b"bee", b"", b"gamma!"]
        for chunk in chunks:
            one.append(chunk)
        first = many.append_many(chunks)
        assert first == 0
        assert many.read() == one.read() == b"".join(chunks)
        assert disk._used == 2 * len(b"".join(chunks))

    def test_raises_before_mutating_on_capacity(self):
        disk = VirtualDisk(capacity_bytes=10)
        f = disk.create("a")
        f.append(b"12345")
        with pytest.raises(DiskFullError):
            f.append_many([b"123", b"456789"])
        # Batch granularity: the first chunk alone would have fit, but
        # nothing at all may land when the combined size cannot.
        assert f.read() == b"12345"
        assert disk._used == 5


class TestWriteCoalescer:
    def test_one_transfer_same_bytes_and_time(self):
        """N adds flush as one fs.write whose virtual time equals the
        charged total, with per-chunk offsets as if appended singly."""
        chunks = [b"a" * 100, b"b" * 50, b"c" * 7]

        env1 = Environment()
        fs1 = NFSModel(env1)
        plain = fs1.disk.create("f")

        def per_call():
            for chunk in chunks:
                yield from fs1.write(len(chunk) + 3)
                plain.append(chunk)

        drive(env1, per_call())

        env2 = Environment()
        fs2 = NFSModel(env2)
        co = WriteCoalescer(fs2, fs2.disk.create("f"))
        for chunk in chunks:
            co.add(chunk, meta_bytes=3)
        assert co.pending == len(chunks)
        offsets = drive(env2, co.flush())

        assert fs2.disk.open("f").read() == fs1.disk.open("f").read()
        assert offsets == [0, 100, 150]
        assert fs2.metrics.write_ops == 1
        assert fs2.metrics.bytes_written == fs1.metrics.bytes_written
        # NFS charges a fixed latency plus a linear byte cost per write
        # op, so merging N ops saves exactly (N-1) fixed latencies — the
        # modeled data-sieving win; the byte charge is identical.
        assert env1.now - env2.now == pytest.approx(2 * fs1.meta_latency)
        # Flushed state resets for reuse.
        assert co.pending == 0 and co.pending_bytes == 0
        assert drive(Environment(), co.flush()) == []

    def test_meta_ops_bulk_matches_loop(self):
        env1 = Environment()
        fs1 = NFSModel(env1)

        def loop():
            for _ in range(7):
                yield from fs1.meta_op()

        drive(env1, loop())
        env2 = Environment()
        fs2 = NFSModel(env2)
        drive(env2, fs2.meta_ops_bulk(7))
        assert env2.now == pytest.approx(env1.now)
        assert fs2.metrics.meta_ops == fs1.metrics.meta_ops == 7
        with pytest.raises(ValueError):
            drive(Environment(), NFSModel(Environment()).meta_ops_bulk(-1))


class TestWriteRecords:
    def _datasets(self, n=5):
        rng = np.random.default_rng(3)
        return [
            Dataset(f"W/b{i}/f", rng.random(40 + i), {"ncomp": 1})
            for i in range(n)
        ]

    def test_equivalent_to_per_dataset_writes(self):
        """write_records == the write_dataset loop: same bytes on disk,
        same readable index — but one merged transfer, so the file costs
        (N-1) fewer fixed per-write latencies of virtual time."""
        datasets = self._datasets()

        def write(env, fs, coalesced):
            writer = SHDFWriter(env, fs, "f.shdf", hdf4_driver())
            yield from writer.open(file_attrs={"k": 1})
            if coalesced:
                yield from writer.write_records(
                    [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
                )
            else:
                for d in datasets:
                    yield from writer.write_dataset(d)
            yield from writer.close()

        env1, env2 = Environment(), Environment()
        fs1, fs2 = NFSModel(env1), NFSModel(env2)
        drive(env1, write(env1, fs1, False))
        drive(env2, write(env2, fs2, True))
        assert fs2.disk.open("f.shdf").read() == fs1.disk.open("f.shdf").read()
        assert env1.now - env2.now == pytest.approx(
            (len(datasets) - 1) * fs1.meta_latency
        )
        assert fs2.metrics.meta_ops == fs1.metrics.meta_ops
        assert fs2.metrics.bytes_written == fs1.metrics.bytes_written

        reader_env = Environment()
        reader = SHDFReader(reader_env, fs2, "f.shdf", hdf4_driver())

        def read_back():
            yield from reader.open()
            for d in datasets:
                got = yield from reader.read_dataset(d.name)
                np.testing.assert_array_equal(got.data, d.data)
            yield from reader.close()

        drive(reader_env, read_back())

    def test_empty_and_closed(self):
        env = Environment()
        fs = NFSModel(env)
        writer = SHDFWriter(env, fs, "e.shdf", hdf4_driver())
        with pytest.raises(RuntimeError):
            drive(env, writer.write_records([]))

        def open_write_nothing():
            yield from writer.open()
            yield from writer.write_records([])
            yield from writer.close()

        drive(env, open_write_nothing())
        assert writer.ndatasets == 0
