"""Unit tests for the virtual disk."""

import os

import pytest

from repro.fs import FileExists, FileNotFound, VirtualDisk


def test_create_and_read_back():
    disk = VirtualDisk()
    f = disk.create("out/snap.hdf")
    f.append(b"hello")
    assert disk.open("out/snap.hdf").read() == b"hello"


def test_create_existing_raises():
    disk = VirtualDisk()
    disk.create("a")
    with pytest.raises(FileExists):
        disk.create("a")
    assert disk.create("a", exist_ok=True) is disk.open("a")


def test_open_missing_raises():
    disk = VirtualDisk()
    with pytest.raises(FileNotFound):
        disk.open("missing")


def test_unlink():
    disk = VirtualDisk()
    disk.create("x")
    disk.unlink("x")
    assert not disk.exists("x")
    with pytest.raises(FileNotFound):
        disk.unlink("x")


def test_append_returns_offset():
    disk = VirtualDisk()
    f = disk.create("f")
    assert f.append(b"abc") == 0
    assert f.append(b"de") == 3
    assert f.size == 5


def test_write_at_extends_with_zeros():
    disk = VirtualDisk()
    f = disk.create("f")
    f.write_at(4, b"xy")
    assert f.read() == b"\x00\x00\x00\x00xy"


def test_write_at_overwrites():
    disk = VirtualDisk()
    f = disk.create("f")
    f.append(b"abcdef")
    f.write_at(2, b"ZZ")
    assert f.read() == b"abZZef"


def test_write_at_negative_offset_rejected():
    f = VirtualDisk().create("f")
    with pytest.raises(ValueError):
        f.write_at(-1, b"x")


def test_ranged_read():
    f = VirtualDisk().create("f")
    f.append(b"0123456789")
    assert f.read(2, 3) == b"234"
    assert f.read(8) == b"89"


def test_truncate():
    f = VirtualDisk().create("f")
    f.append(b"data")
    f.truncate()
    assert f.size == 0


def test_listdir_prefix_filtering():
    disk = VirtualDisk()
    for path in ("run1/a", "run1/b", "run2/a"):
        disk.create(path)
    assert disk.listdir("run1/") == ["run1/a", "run1/b"]
    assert disk.listdir() == ["run1/a", "run1/b", "run2/a"]


def test_stats():
    disk = VirtualDisk()
    disk.create("a").append(b"12345")
    disk.create("b").append(b"67")
    assert disk.nfiles == 2
    assert disk.total_bytes == 7


def test_persist_and_load_roundtrip(tmp_path):
    disk = VirtualDisk()
    disk.create("snap/file1.hdf").append(b"\x01\x02binary\x00data")
    disk.create("file2").append(b"top-level")
    written = disk.persist(str(tmp_path))
    assert len(written) == 2
    assert all(os.path.exists(p) for p in written)

    loaded = VirtualDisk.load(str(tmp_path))
    assert loaded.open("snap/file1.hdf").read() == b"\x01\x02binary\x00data"
    assert loaded.open("file2").read() == b"top-level"
