"""Unit tests for the read-coalescing scheduler (repro.fs.coalesce).

The restart mirror image of the write coalescer: merged extents must
return exactly the bytes a per-call read loop would, while charging one
``fs.read`` per contiguous run — the modeled data-sieving win.
"""

import pytest

from repro.des import Environment
from repro.fs import NFSModel, ReadCoalescer, merge_extents


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


class TestMergeExtents:
    def test_sorted_disjoint_runs(self):
        assert merge_extents([(10, 5), (0, 5)]) == [(0, 5), (10, 5)]

    def test_touching_and_overlapping_merge(self):
        assert merge_extents([(0, 5), (5, 5)]) == [(0, 10)]
        assert merge_extents([(0, 8), (4, 10)]) == [(0, 14)]
        assert merge_extents([(0, 10), (2, 3)]) == [(0, 10)]

    def test_duplicates_and_empty_extents(self):
        assert merge_extents([(3, 4), (3, 4), (3, 0)]) == [(3, 4)]
        assert merge_extents([]) == []

    def test_gap_sieves_small_holes_only(self):
        extents = [(0, 10), (20, 10)]
        assert merge_extents(extents, gap=10) == [(0, 30)]
        assert merge_extents(extents, gap=9) == [(0, 10), (20, 10)]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            merge_extents([(0, 4)], gap=-1)
        with pytest.raises(ValueError):
            merge_extents([(-1, 4)])
        with pytest.raises(ValueError):
            merge_extents([(0, -4)])


class TestReadCoalescer:
    def _file(self, disk, nbytes=512):
        f = disk.create("f")
        f.append(bytes(i % 251 for i in range(nbytes)))
        return f

    def test_one_transfer_same_bytes_and_time(self):
        """Adjacent extents collapse into one fs.read whose virtual time
        saves exactly (N-1) fixed latencies vs the per-call loop, and
        the returned chunks are byte-identical, in add order."""
        extents = [(0, 100), (100, 50), (150, 7)]

        env1 = Environment()
        fs1 = NFSModel(env1)
        f1 = self._file(fs1.disk)

        def per_call():
            out = []
            for offset, nbytes in extents:
                yield from fs1.read(nbytes)
                out.append(f1.read_checked(offset, nbytes))
            return out

        chunks1 = drive(env1, per_call())

        env2 = Environment()
        fs2 = NFSModel(env2)
        co = ReadCoalescer(fs2, self._file(fs2.disk))
        for offset, nbytes in extents:
            co.add(offset, nbytes)
        assert co.pending == len(extents)
        assert co.plan() == [(0, 157)]
        chunks2 = drive(env2, co.run())

        assert chunks2 == chunks1
        assert fs2.metrics.read_ops == 1
        assert fs2.metrics.bytes_read == fs1.metrics.bytes_read
        assert env1.now - env2.now == pytest.approx(2 * fs1.meta_latency)
        # Served state resets for reuse.
        assert co.pending == 0 and co.pending_bytes == 0
        assert drive(Environment(), co.run()) == []

    def test_meta_bytes_charged_once(self):
        env1 = Environment()
        fs1 = NFSModel(env1)
        f1 = self._file(fs1.disk)

        def per_call():
            for offset, nbytes in [(0, 20), (20, 20)]:
                yield from fs1.read(nbytes + 3)
                f1.read_checked(offset, nbytes)

        drive(env1, per_call())

        env2 = Environment()
        fs2 = NFSModel(env2)
        co = ReadCoalescer(fs2, self._file(fs2.disk))
        co.add(0, 20, meta_bytes=3)
        co.add(20, 20, meta_bytes=3)
        assert co.pending_bytes == 46
        drive(env2, co.run())
        # Payload + per-record metadata bytes match the loop exactly.
        assert fs2.metrics.bytes_read == fs1.metrics.bytes_read == 46

    def test_sieve_gap_reads_hole_bytes(self):
        """A sieved hole is read and charged — the data-sieving trade —
        but never returned to any caller."""
        env = Environment()
        fs = NFSModel(env)
        f = self._file(fs.disk)
        data = f.read()
        co = ReadCoalescer(fs, f, gap=16)
        co.add(0, 10)
        co.add(26, 10)
        assert co.plan() == [(0, 36)]
        chunks = drive(env, co.run())
        assert chunks == [data[0:10], data[26:36]]
        assert fs.metrics.read_ops == 1
        assert fs.metrics.bytes_read == 36

    def test_overlapping_extents_read_once_sliced_per_caller(self):
        env = Environment()
        fs = NFSModel(env)
        f = self._file(fs.disk)
        data = f.read()
        co = ReadCoalescer(fs, f)
        co.add(40, 20)
        co.add(50, 20)
        co.add(45, 5)
        chunks = drive(env, co.run())
        assert chunks == [data[40:60], data[50:70], data[45:50]]
        assert fs.metrics.read_ops == 1
        assert fs.metrics.bytes_read == 30  # merged span, not the sum

    def test_rejects_bad_extent(self):
        co = ReadCoalescer(NFSModel(Environment()), None)
        with pytest.raises(ValueError):
            co.add(-1, 4)
        with pytest.raises(ValueError):
            co.add(0, -4)
