"""Read-fault semantics of the virtual filesystem and read coalescer.

The read mirror of the write-fault contract: a checked read consults
the disk's ``read_fault_hook`` *before* returning any byte, structural
(unchecked) reads never fault, and a faulted merged-read schedule stays
pending so a retry replays — and re-charges — the whole thing.
"""

import pytest

from repro.cluster import Machine, testbox as make_testbox
from repro.des import Environment
from repro.faults import FaultPlan, TransientEIO
from repro.fs import NFSModel, ReadCoalescer, TransientIOError, VirtualDisk


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


class TestReadFaultHook:
    def test_read_checked_raises_plain_read_does_not(self):
        disk = VirtualDisk()
        f = disk.create("a")
        f.append(b"payload")

        def hook(path, nbytes):
            raise TransientIOError(f"injected ({path})")

        disk.read_fault_hook = hook
        with pytest.raises(TransientIOError):
            f.read_checked(0, 4)
        # Structural parses (torn-file scans, recovery) stay unchecked.
        assert f.read() == b"payload"
        disk.read_fault_hook = None
        assert f.read_checked(0, 4) == b"payl"

    def test_transient_eio_op_field_validated(self):
        assert TransientEIO(op="read").op == "read"
        assert TransientEIO().op == "write"
        with pytest.raises(ValueError):
            TransientEIO(op="chmod")

    def test_injector_installs_read_hook_with_budget(self):
        machine = Machine(make_testbox(nnodes=1), seed=7)
        f = machine.disk.create("ck_s0000")
        f.append(b"x" * 64)
        plan = FaultPlan((TransientEIO(op="read", path_prefix="ck", count=2),))
        injector = machine.install_faults(plan)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                f.read_checked(0, 8)
        # Budget exhausted: third attempt succeeds; writes never faulted.
        assert f.read_checked(0, 8) == b"x" * 8
        f.append(b"y")
        # The per-spec budget is fully drained.
        assert [cell[0] for _spec, cell in injector._read_eio_budgets] == [0]

    def test_read_eio_does_not_arm_write_hook(self):
        machine = Machine(make_testbox(nnodes=1), seed=7)
        plan = FaultPlan((TransientEIO(op="read", count=1),))
        machine.install_faults(plan)
        assert machine.disk.fault_hook is None
        assert machine.disk.read_fault_hook is not None


class TestReadCoalescerUnderFaults:
    def test_raise_before_mutate_and_replay_recharges(self):
        """A fault mid-schedule leaves the coalescer pending; the retry
        replays every merged run and re-charges full virtual time."""
        env = Environment()
        fs = NFSModel(env)
        f = fs.disk.create("f")
        f.append(bytes(range(200)))
        fails = [1]

        def hook(path, nbytes):
            if fails[0] > 0:
                fails[0] -= 1
                raise TransientIOError(f"injected ({path})")

        fs.disk.read_fault_hook = hook
        co = ReadCoalescer(fs, f)
        co.add(0, 10)
        co.add(100, 10)  # two disjoint runs
        assert co.plan() == [(0, 10), (100, 10)]

        def attempt():
            try:
                yield from co.run()
            except TransientIOError:
                return None

        assert drive(env, attempt()) is None
        first_charge = env.now
        # Still pending: nothing was consumed by the failed schedule.
        assert co.pending == 2
        chunks = drive(env, co.run())
        assert chunks == [bytes(range(10)), bytes(range(100, 110))]
        assert co.pending == 0
        # The replay re-charged at least the faulted run's time again.
        assert env.now > first_charge
        # 1 op charged before the first run's checked read faulted + 2
        # on the successful replay.
        assert fs.metrics.read_ops == 3
