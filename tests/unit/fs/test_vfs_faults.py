"""Write-fault semantics of the virtual filesystem.

The contract the retry layers build on: a failed write raises *before*
mutating anything, so a retried operation resumes exactly where it
faulted with no duplicated or lost bytes — and a disk that took faults
mid-run still persists/loads exactly like a healthy one.
"""

import pytest

from repro.fs import (
    DiskFullError,
    TransientIOError,
    VirtualDisk,
    WriteFaultError,
)


class TestCapacity:
    def test_write_over_capacity_raises_and_leaves_no_partial_state(self):
        disk = VirtualDisk(capacity_bytes=10)
        f = disk.create("a")
        f.append(b"12345678")
        with pytest.raises(DiskFullError):
            f.append(b"xyz")  # 8 + 3 > 10
        assert f.read() == b"12345678"  # nothing appended
        assert disk.total_bytes == 8

    def test_capacity_restored_write_succeeds_without_duplication(self):
        disk = VirtualDisk()
        f = disk.create("a")
        disk.set_capacity(4)
        with pytest.raises(DiskFullError):
            f.append(b"hello")
        disk.set_capacity(None)
        f.append(b"hello")
        assert f.read() == b"hello"

    def test_set_capacity_never_discards_existing_content(self):
        disk = VirtualDisk()
        f = disk.create("a")
        f.append(b"0123456789")
        disk.set_capacity(2)  # already over the new limit
        assert f.read() == b"0123456789"
        with pytest.raises(DiskFullError):
            f.append(b"!")

    def test_disk_full_is_a_write_fault(self):
        assert issubclass(DiskFullError, WriteFaultError)
        assert issubclass(TransientIOError, WriteFaultError)


class TestFaultHook:
    def test_hook_failure_leaves_file_unchanged(self):
        disk = VirtualDisk()
        fails = [2]

        def hook(path, nbytes):
            if fails[0] > 0:
                fails[0] -= 1
                raise TransientIOError(f"injected ({path})")

        disk.fault_hook = hook
        f = disk.create("a")
        for _ in range(2):
            with pytest.raises(TransientIOError):
                f.append(b"data")
        assert f.read() == b""
        f.append(b"data")  # budget exhausted: third attempt lands
        assert f.read() == b"data"

    def test_hook_applies_to_write_at_too(self):
        disk = VirtualDisk()
        f = disk.create("a")
        f.append(b"0000")
        disk.fault_hook = lambda path, nbytes: (_ for _ in ()).throw(
            TransientIOError(path)
        )
        with pytest.raises(TransientIOError):
            f.write_at(0, b"11")
        assert f.read() == b"0000"


class TestPersistAfterFaults:
    def test_persist_load_roundtrip_includes_post_fault_files(self, tmp_path):
        """Files created after an injected fault survive persist/load."""
        disk = VirtualDisk()
        healthy = disk.create("ck/healthy")
        healthy.append(b"before faults")

        fails = [1]

        def hook(path, nbytes):
            if fails[0] > 0:
                fails[0] -= 1
                raise TransientIOError(f"injected ({path})")

        disk.fault_hook = hook
        recovered = disk.create("ck/recovered")
        with pytest.raises(TransientIOError):
            recovered.append(b"first try")
        recovered.append(b"second try")  # retry succeeds
        disk.fault_hook = None
        disk.create("ck/after").append(b"post-fault file")

        disk.persist(str(tmp_path))
        loaded = VirtualDisk.load(str(tmp_path))
        assert loaded.listdir() == disk.listdir()
        for path in disk.listdir():
            assert loaded.open(path).read() == disk.open(path).read()
        assert loaded.open("ck/recovered").read() == b"second try"
        assert loaded.total_bytes == disk.total_bytes
