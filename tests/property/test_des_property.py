"""Property-based tests for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, PriorityResource, Resource, Store


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_time_is_monotone_nondecreasing(delays):
    """Observed event times never decrease, whatever the schedule."""
    env = Environment()
    observed = []

    def waiter(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert env.now == max(delays)


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10),  # arrival
            st.floats(min_value=0.01, max_value=5),  # hold time
        ),
        min_size=1,
        max_size=25,
    ),
)
@settings(max_examples=80, deadline=None)
def test_resource_never_exceeds_capacity(capacity, jobs):
    env = Environment()
    res = Resource(env, capacity=capacity)
    in_use = [0]
    max_in_use = [0]
    served = [0]

    def user(arrival, hold):
        yield env.timeout(arrival)
        req = res.request()
        yield req
        in_use[0] += 1
        max_in_use[0] = max(max_in_use[0], in_use[0])
        yield env.timeout(hold)
        in_use[0] -= 1
        res.release(req)
        served[0] += 1

    for arrival, hold in jobs:
        env.process(user(arrival, hold))
    env.run()
    assert max_in_use[0] <= capacity
    assert served[0] == len(jobs)  # no job starves
    assert res.count == 0  # everything released


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
)
@settings(max_examples=80, deadline=None)
def test_store_is_fifo_and_conserves_items(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == list(items)
    assert len(store) == 0


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.floats(0, 5)),
        min_size=2,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_priority_resource_orders_by_priority_then_time(entries):
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)  # everyone queues behind this
        res.release(req)

    def user(idx, prio, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append((prio, env.now, idx))
        res.release(req)

    env.process(holder())
    for idx, (prio, arrive) in enumerate(entries):
        env.process(user(idx, prio, min(arrive, 99.0)))
    env.run()
    # Served priorities must be non-decreasing.
    priorities = [p for p, _, _ in order]
    assert priorities == sorted(priorities)


@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_determinism_identical_runs(delays):
    """The same program yields byte-identical event traces."""

    def run():
        env = Environment()
        trace = []

        def worker(i, delay):
            yield env.timeout(delay)
            trace.append((i, env.now))
            yield env.timeout(delay / 2)
            trace.append((i, env.now))

        for i, d in enumerate(delays):
            env.process(worker(i, d))
        env.run()
        return trace

    assert run() == run()
