"""Property tests: the bucketed queue against the heapq executable spec.

``Environment(queue="heapq")`` keeps the original single-heap scheduler
verbatim; these tests drive both implementations with the same
schedule / schedule_many / schedule_callback / cancel interleavings and
assert the callback firing order (and the scaling diagnostics) are
identical.  Delays are drawn from a small pool so same-``(time,
priority)`` collisions — the bucket and fusion paths — are common.

Also covered: NaN/inf/negative delay rejection surviving pooled
timeout reuse, and recycled pool generations never firing for a stale
holder.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import NORMAL, URGENT, Environment, Event

#: Small delay pool => frequent key collisions (bucket/fusion paths).
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0])
_PRIOS = st.sampled_from([URGENT, NORMAL, NORMAL])

_OP = st.one_of(
    st.tuples(st.just("one"), _DELAYS, _PRIOS),
    st.tuples(st.just("many"), _DELAYS, _PRIOS, st.integers(1, 4)),
    st.tuples(st.just("cb"), _DELAYS, _PRIOS),
    st.tuples(st.just("sleep"), _DELAYS),
    st.tuples(st.just("cancel"), st.integers(0, 30)),
)

_PROGRAM = st.lists(
    st.tuples(_DELAYS, st.lists(_OP, min_size=1, max_size=5)),
    min_size=1,
    max_size=8,
)


def _drive(queue: str, program):
    """Execute ``program`` on a fresh environment; return the trace."""
    env = Environment(queue=queue)
    order = []
    cancellable = []
    labels = iter(range(10**9))

    def fire(label):
        def cb(_event):
            order.append((env.now, label))

        return cb

    def bulk_fire(label):
        order.append((env.now, label))

    def control():
        for step_delay, ops in program:
            if step_delay:
                yield env.timeout(step_delay)
            for op in ops:
                kind = op[0]
                if kind == "one":
                    _, delay, prio = op
                    ev = Event(env)
                    label = next(labels)
                    ev.callbacks.append(fire(label))
                    ev._ok = True
                    ev._value = label
                    env.schedule(ev, priority=prio, delay=delay)
                    cancellable.append(ev)
                elif kind == "many":
                    _, delay, prio, n = op
                    evs = []
                    for _ in range(n):
                        ev = Event(env)
                        label = next(labels)
                        ev.callbacks.append(fire(label))
                        ev._ok = True
                        ev._value = label
                        evs.append(ev)
                        cancellable.append(ev)
                    env.schedule_many(evs, priority=prio, delay=delay)
                elif kind == "cb":
                    _, delay, prio = op
                    env.schedule_callback(
                        bulk_fire, next(labels), priority=prio, delay=delay
                    )
                elif kind == "sleep":
                    _, delay = op
                    t = env.sleep(delay)
                    t.callbacks.append(fire(next(labels)))
                elif kind == "cancel":
                    _, idx = op
                    if cancellable:
                        ev = cancellable[idx % len(cancellable)]
                        if ev.callbacks is not None and ev.triggered:
                            ev.cancel()

    env.process(control())
    env.run()
    return order, env


@given(_PROGRAM)
@settings(max_examples=200, deadline=None)
def test_bucketed_pop_order_equals_heapq_spec(program):
    """Identical firing order and diagnostics across both queues."""
    bucketed_order, bucketed_env = _drive("bucketed", program)
    spec_order, spec_env = _drive("heapq", program)
    assert bucketed_order == spec_order
    assert bucketed_env.now == spec_env.now
    assert bucketed_env.events_processed == spec_env.events_processed
    assert bucketed_env.events_cancelled == spec_env.events_cancelled


@given(_PROGRAM)
@settings(max_examples=50, deadline=None)
def test_bucketed_queue_drains_completely(program):
    """After run() both queue structures are fully consumed."""
    _, env = _drive("bucketed", program)
    assert env.queue_depth() == 0
    assert not env._buckets
    assert not env._nowq


@given(
    st.lists(
        st.one_of(
            st.sampled_from([0.0, 0.5, 1.0]),
            st.sampled_from([float("nan"), float("inf"), -1.0, -0.0]),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_pooled_sleep_validates_like_timeout(delays):
    """sleep() rejects the same delays as Timeout — even on reuse.

    The pooled factory re-validates every delay, so a recycled object
    can never smuggle a NaN/inf/negative delay past validation and
    poison the heap ordering.  Valid sleeps interleaved with rejected
    ones must all fire exactly once.
    """
    env = Environment()
    fired = []

    def proc():
        for delay in delays:
            invalid = delay < 0 or delay != delay or delay == float("inf")
            if invalid:
                for factory in (env.sleep, env.timeout):
                    try:
                        factory(delay)
                    except ValueError:
                        pass
                    else:
                        raise AssertionError(
                            f"{factory} accepted bad delay {delay}"
                        )
            else:
                before = env.now
                yield env.sleep(delay)
                fired.append(env.now - before)

    env.process(proc())
    env.run()
    expected = [d for d in delays if not (d < 0 or d != d or math.isinf(d))]
    assert fired == expected
    # -0.0 counts as valid (it is not < 0); make the expectation exact.
    assert len(fired) == len(expected)


@given(st.lists(st.sampled_from([0.0, 0.25, 0.5]), min_size=2, max_size=12))
@settings(max_examples=100, deadline=None)
def test_recycled_generation_never_fires_stale(delays):
    """A recycled pooled timeout never fires for its previous holder.

    Each reuse bumps ``_gen``; a holder that keeps a stale reference
    observes the bump instead of a spurious second wake-up.
    """
    env = Environment()
    wakeups = []
    stale = []

    def holder():
        t = env.sleep(delays[0])
        gen0 = t._gen
        yield t
        wakeups.append(env.now)
        stale.append((t, gen0))

    def churner():
        for delay in delays[1:]:
            yield env.sleep(delay)

    env.process(holder())
    env.process(churner())
    env.run()
    assert len(wakeups) == 1
    t, gen0 = stale[0]
    # The object was recycled (gen bumped) or at least retired; either
    # way its callbacks are gone, so it can never fire again.
    assert t._gen >= gen0
    assert t.callbacks is None or t.callbacks == []


@given(
    st.sampled_from([0.1, 0.5, 1.0]),
    st.sampled_from([1.5, 2.0, 5.0]),
    st.integers(1, 8),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_guard_survives_pooled_reuse(win_delay, guard_delay, churn):
    """The timeout-race pattern: a cancelled guard stays dead.

    The winner fires, the guard is cancelled, and a storm of pooled
    sleeps reuses freelist objects afterwards — the waiter must resume
    exactly once and the cancelled guard's queue entry must be skipped
    silently when it surfaces.
    """
    env = Environment()
    resumed = []

    def waiter():
        ev = env.timeout(win_delay, value="win")
        guard = env.timeout(guard_delay)
        result = yield env.any_of([ev, guard])
        resumed.append(list(result.values()))
        if ev.triggered and not guard.processed:
            assert guard.cancel() is True
            assert guard.cancel() is False  # idempotent

    def churner():
        for _ in range(churn):
            yield env.sleep(0.25)

    env.process(waiter())
    env.process(churner())
    env.run()
    assert resumed == [["win"]]
    assert env.events_cancelled == 1
    assert env.queue_depth() == 0
