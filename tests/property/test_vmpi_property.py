"""Property-based tests for vmpi collective semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import run_spmd


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=8), seed=seed)
    return run_spmd(machine, nprocs, main)


@given(
    st.integers(min_value=1, max_value=10),
    st.lists(st.integers(-1000, 1000), min_size=10, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_allreduce_sum_matches_python_sum(size, values):
    out = {}

    def main(ctx):
        result = yield from ctx.world.allreduce(values[ctx.rank])
        out[ctx.rank] = result

    launch(size, main)
    expected = sum(values[:size])
    assert all(v == expected for v in out.values())


@given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=9))
@settings(max_examples=40, deadline=None)
def test_bcast_reaches_everyone_from_any_root(size, root_raw):
    root = root_raw % size
    payload = {"root": root, "data": list(range(root))}
    out = {}

    def main(ctx):
        obj = payload if ctx.rank == root else None
        result = yield from ctx.world.bcast(obj, root=root)
        out[ctx.rank] = result

    launch(size, main)
    assert all(v == payload for v in out.values())


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_allgather_is_rank_indexed(size):
    out = {}

    def main(ctx):
        result = yield from ctx.world.allgather(ctx.rank * 3)
        out[ctx.rank] = result

    launch(size, main)
    for r in range(size):
        assert out[r] == [i * 3 for i in range(size)]


@given(
    st.integers(min_value=2, max_value=12),
    st.lists(st.integers(0, 2), min_size=12, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_split_partitions_ranks_exactly(size, colors):
    """Every rank lands in exactly one sub-communicator; groups are
    disjoint, complete, and ordered by old rank."""
    out = {}

    def main(ctx):
        sub = yield from ctx.world.split(colors[ctx.rank])
        members = yield from sub.allgather(ctx.rank)
        out[ctx.rank] = (colors[ctx.rank], sub.rank, tuple(members))

    launch(size, main)
    seen = set()
    for rank, (color, sub_rank, members) in out.items():
        assert members[sub_rank] == rank
        assert list(members) == sorted(members)
        assert all(colors[m] == color for m in members)
        seen.add(rank)
    assert seen == set(range(size))


@given(
    st.integers(min_value=2, max_value=8),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_point_to_point_preserves_arbitrary_arrays(size, data):
    arr = data.draw(
        st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=64)
    )
    payload = np.array(arr)
    received = {}

    def main(ctx):
        if ctx.rank == 0:
            for dest in range(1, size):
                yield from ctx.world.send(payload, dest=dest, tag=dest)
        else:
            got, _ = yield from ctx.world.recv(source=0, tag=ctx.rank)
            received[ctx.rank] = got

    launch(size, main)
    for r in range(1, size):
        np.testing.assert_array_equal(received[r], payload)
