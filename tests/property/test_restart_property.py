"""Property tests: sieved restart reads are exact equivalents.

Two layers of the two-phase restart path are checked against their
executable specs across random inputs:

* :class:`repro.fs.ReadCoalescer` — merged-read schedules return
  byte-identical data to issuing every ranged read individually, for
  arbitrary overlapping / adjacent / gapped extent layouts and sieve
  thresholds, and a schedule interrupted by an injected read fault
  raises before handing out any byte (and replays cleanly).
* The batched Rocpanda restart — two-phase collective reads restore
  bit-identical block data to the per-block restart loop, across random
  write/restart topologies and pane layouts.  Virtual time is *not*
  compared: the batched path is deliberately faster.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.des import Environment
from repro.fs import NFSModel, ReadCoalescer, TransientIOError
from repro.io import PandaServer, RocpandaModule, rocpanda_init
from repro.roccom import AttributeSpec, Roccom
from repro.vmpi import run_spmd


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


@st.composite
def extent_layouts(draw):
    size = draw(st.integers(min_value=1, max_value=2048))
    nextents = draw(st.integers(min_value=1, max_value=24))
    extents = []
    for _ in range(nextents):
        offset = draw(st.integers(min_value=0, max_value=size - 1))
        nbytes = draw(st.integers(min_value=0, max_value=size - offset))
        extents.append((offset, nbytes))
    gap = draw(st.integers(min_value=0, max_value=256))
    return size, extents, gap


@given(extent_layouts())
@settings(max_examples=60, deadline=None)
def test_read_coalescer_is_byte_identical(layout):
    size, extents, gap = layout
    env = Environment()
    fs = NFSModel(env)
    f = fs.disk.create("f")
    f.append(bytes(i % 251 for i in range(size)))
    data = f.read()

    co = ReadCoalescer(fs, f, gap=gap)
    for offset, nbytes in extents:
        co.add(offset, nbytes)
    chunks = drive(env, co.run())

    assert chunks == [data[o : o + n] for o, n in extents]
    # One fs.read per merged run, covering at least the wanted bytes.
    runs = fs.metrics.read_ops
    assert runs <= len(extents) or not any(n for _o, n in extents)


@given(extent_layouts(), st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_read_coalescer_fault_raises_before_handing_out_bytes(layout, nfail):
    size, extents, gap = layout
    env = Environment()
    fs = NFSModel(env)
    f = fs.disk.create("f")
    f.append(bytes(i % 251 for i in range(size)))
    data = f.read()
    budget = [nfail]

    def hook(path, nbytes):
        if budget[0] > 0:
            budget[0] -= 1
            raise TransientIOError(f"injected ({path})")

    fs.disk.read_fault_hook = hook
    co = ReadCoalescer(fs, f, gap=gap)
    for offset, nbytes in extents:
        co.add(offset, nbytes)
    nruns = len(co.plan())

    def attempt():
        try:
            return (yield from co.run())
        except TransientIOError:
            return None

    result = drive(env, attempt())
    if result is not None:
        # Fewer merged runs than the fault budget: the hook never fired
        # (e.g. all extents empty -> no runs at all); data still exact.
        assert nfail >= nruns or budget[0] == 0 or nruns == 0
        assert result == [data[o : o + n] for o, n in extents]
        return
    # Faulted: nothing was handed out, the schedule is fully pending.
    assert co.pending == len(extents)
    retry = drive(env, attempt())
    while retry is None:
        retry = drive(env, attempt())
    assert retry == [data[o : o + n] for o, n in extents]
    assert co.pending == 0


def _digest(blockmap):
    h = hashlib.sha256()
    for bid in sorted(blockmap):
        h.update(str(bid).encode())
        for name in sorted(blockmap[bid]):
            h.update(name.encode())
            h.update(np.ascontiguousarray(blockmap[bid][name]).tobytes())
    return h.hexdigest()


def _write_checkpoint(nservers, nclients, layout, seed):
    """Run one fault-free write job; returns (machine, all pane ids)."""

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("coords", "node", ncomp=3))
        w.declare_attribute(AttributeSpec("field", "element"))
        rng = np.random.default_rng(seed + topo.comm.rank)
        for i, (nnodes, nelems) in enumerate(layout[topo.comm.rank]):
            pane_id = topo.comm.rank * 16 + i
            w.register_pane(pane_id, nnodes, nelems)
            w.set_array("coords", pane_id, rng.random((nnodes, 3)))
            w.set_array("field", pane_id, rng.random(nelems))
        yield from com.call_function("OUT.write_attribute", "W", None, "ck")
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()

    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed)
    run_spmd(machine, nservers + nclients, main)
    ids = [
        rank * 16 + i
        for rank in range(nclients)
        for i in range(len(layout[rank]))
    ]
    return machine, ids


def _restart(disk, ids, nservers, nclients, batched, seed):
    """One restart job over an existing checkpoint disk; returns the
    merged {block_id: {attr: array}} map restored across clients."""

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return ("server", None)
        com = Roccom(ctx)
        panda = com.load_module(
            RocpandaModule(ctx, topo, batched_restart=batched)
        )
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("coords", "node", ncomp=3))
        w.declare_attribute(AttributeSpec("field", "element"))
        for pid in ids[topo.comm.rank :: nclients]:
            w.register_pane(pid, 0, 0)
        got = yield from com.call_function("OUT.read_attribute", "W", None, "ck")
        restored = {
            pid: {
                "coords": w.get_array("coords", pid).copy(),
                "field": w.get_array("field", pid).copy(),
            }
            for pid in got
        }
        yield from panda.finalize()
        return ("client", restored)

    machine = Machine(
        make_testbox(nnodes=4, cpus_per_node=4), seed=seed + 1, disk=disk
    )
    job = run_spmd(machine, nservers + nclients, main)
    blockmap = {}
    for kind, value in job.returns:
        if kind == "client":
            blockmap.update(value)
    return blockmap


@st.composite
def restart_shapes(draw):
    nservers_w = draw(st.integers(min_value=1, max_value=3))
    nclients_w = draw(st.integers(min_value=nservers_w, max_value=4))
    layout = [
        [
            (
                draw(st.integers(min_value=1, max_value=400)),
                draw(st.integers(min_value=1, max_value=2000)),
            )
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        for _ in range(nclients_w)
    ]
    # Every restart server must own at least one client: a server with
    # no assigned clients exits its serve loop immediately (its
    # expected-shutdown set is empty), so nclients >= nservers is a
    # topology contract for both restart paths.
    nservers_r = draw(st.integers(min_value=1, max_value=3))
    nclients_r = draw(st.integers(min_value=nservers_r, max_value=4))
    return nservers_w, nclients_w, layout, nservers_r, nclients_r


@given(restart_shapes(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_batched_restart_restores_bit_identical_data(shape, seed):
    nservers_w, nclients_w, layout, nservers_r, nclients_r = shape
    machine, ids = _write_checkpoint(nservers_w, nclients_w, layout, seed)
    per_block = _restart(
        machine.disk, ids, nservers_r, nclients_r, False, seed
    )
    two_phase = _restart(
        machine.disk, ids, nservers_r, nclients_r, True, seed
    )
    assert sorted(per_block) == sorted(two_phase) == sorted(ids)
    assert _digest(per_block) == _digest(two_phase)
    for pid in ids:
        for attr in ("coords", "field"):
            np.testing.assert_array_equal(
                per_block[pid][attr], two_phase[pid][attr]
            )
