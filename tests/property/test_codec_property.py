"""Property-based tests (hypothesis) for the SHDF codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.shdf import Dataset, FileImage, decode_file, encode_file

_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.int8, np.uint8, np.bool_]
)

_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)

_scalar_attr = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=30),
    st.binary(max_size=30),
)

_attr_value = st.one_of(
    _scalar_attr,
    st.lists(_scalar_attr, max_size=5),
)

_attrs = st.dictionaries(_names, _attr_value, max_size=5)


@st.composite
def datasets(draw, name=None):
    dtype = draw(_DTYPES)
    shape = draw(hnp.array_shapes(min_dims=0, max_dims=3, max_side=8))
    data = draw(
        hnp.arrays(
            dtype=dtype,
            shape=shape,
            elements=hnp.from_dtype(
                np.dtype(dtype), allow_nan=False, allow_infinity=False
            ),
        )
    )
    return Dataset(name or draw(_names), data, draw(_attrs))


@st.composite
def file_images(draw):
    image = FileImage(draw(_attrs))
    names = draw(st.lists(_names, unique=True, max_size=6))
    for name in names:
        image.add(draw(datasets(name=name)))
    return image


@given(file_images())
@settings(max_examples=150, deadline=None)
def test_encode_decode_roundtrip(image):
    decoded = decode_file(encode_file(image))
    assert decoded == image


@given(file_images())
@settings(max_examples=60, deadline=None)
def test_encode_is_deterministic(image):
    assert encode_file(image) == encode_file(image)


@given(datasets(), datasets())
@settings(max_examples=60, deadline=None)
def test_appending_preserves_earlier_records(d1, d2):
    if d1.name == d2.name:
        d2 = Dataset(d2.name + "_2", d2.data, d2.attrs)
    image = FileImage()
    image.add(d1)
    image.add(d2)
    decoded = decode_file(encode_file(image))
    assert decoded.names() == [d1.name, d2.name]
    assert decoded.get(d1.name) == d1


@given(file_images(), st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_truncation_never_decodes_silently(image, cut):
    """Chopping bytes off the end either errors or drops whole records."""
    from repro.shdf import CodecError

    buf = encode_file(image)
    if cut >= len(buf):
        return
    truncated = buf[:-cut]
    try:
        decoded = decode_file(truncated)
    except CodecError:
        return
    # If it decoded, it must be a clean prefix of the original records.
    assert len(decoded) <= len(image)
    for got, expected in zip(decoded, image):
        assert got == expected


@given(file_images())
@settings(max_examples=60, deadline=None)
def test_zero_copy_and_copying_decodes_are_identical(image):
    """Read-only views and private copies must hold identical content."""
    buf = encode_file(image)
    views = decode_file(buf)            # zero-copy default
    copies = decode_file(buf, copy=True)
    assert views == copies == image


@given(file_images())
@settings(max_examples=80, deadline=None)
def test_v2_roundtrip_matches_v1(image):
    """Both on-disk formats decode to the identical image."""
    from repro.shdf import decode_file, encode_file_v2

    assert decode_file(encode_file_v2(image)) == image


@given(file_images())
@settings(max_examples=60, deadline=None)
def test_v2_index_is_complete_and_random_accessible(image):
    from repro.shdf import encode_file_v2, read_dataset_at, read_index

    buf = encode_file_v2(image)
    index = read_index(buf)
    assert set(index) == set(image.names())
    for name, (offset, _len) in index.items():
        assert read_dataset_at(buf, offset) == image.get(name)
