"""Property-based tests for the I/O layer's integrity invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import cylinder_blocks, partition_blocks
from repro.io import (
    DataBlock,
    PandaServer,
    RocpandaModule,
    ServerConfig,
    block_to_datasets,
    datasets_to_blocks,
    rocpanda_init,
)
from repro.roccom import AttributeSpec, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=60, deadline=None)
def test_partition_conserves_blocks_and_cells(nblocks_raw, nprocs, seed):
    nblocks = max(nblocks_raw, nprocs)
    specs = cylinder_blocks(nblocks, nblocks * 50, seed=seed)
    assignment = partition_blocks(specs, nprocs)
    flat = [s for bucket in assignment for s in bucket]
    assert sorted(s.block_id for s in flat) == [s.block_id for s in specs]
    assert sum(s.ncells for s in flat) == sum(s.ncells for s in specs)
    # Non-trivial balance: no processor holds everything (when it can't).
    if nblocks >= 2 * nprocs:
        loads = [sum(s.ncells for s in bucket) for bucket in assignment]
        assert max(loads) < sum(loads)


@st.composite
def data_blocks(draw):
    nnodes = draw(st.integers(min_value=1, max_value=40))
    nelems = draw(st.integers(min_value=1, max_value=40))
    block_id = draw(st.integers(min_value=0, max_value=10_000))
    arrays = {}
    specs = {}
    for name, loc, ncomp in (("coords", "node", 3), ("value", "element", 1)):
        n = nnodes if loc == "node" else nelems
        shape = (n, ncomp) if ncomp > 1 else (n,)
        arrays[name] = draw(
            st.integers(min_value=0, max_value=1 << 30)
        ) * np.ones(shape) * 1e-9
        specs[name] = AttributeSpec(name, loc, ncomp=ncomp)
    return DataBlock(
        window="W",
        block_id=block_id,
        nnodes=nnodes,
        nelems=nelems,
        arrays=arrays,
        specs=specs,
    )


@given(st.lists(data_blocks(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_block_dataset_roundtrip_is_lossless(blocks):
    # Deduplicate ids (datasets_to_blocks groups by id).
    seen = set()
    unique = []
    for block in blocks:
        if block.block_id not in seen:
            seen.add(block.block_id)
            unique.append(block)
    datasets = [d for b in unique for d in block_to_datasets(b)]
    restored = {b.block_id: b for b in datasets_to_blocks(datasets)}
    assert set(restored) == seen
    for block in unique:
        back = restored[block.block_id]
        assert back.nnodes == block.nnodes
        assert back.nelems == block.nelems
        for name, arr in block.arrays.items():
            np.testing.assert_array_equal(back.arrays[name], arr)


@given(
    st.integers(min_value=1, max_value=3),  # blocks per client
    st.sampled_from([1024, 16 * 1024, 256 * 1024, 10**9]),  # buffer bytes
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_active_buffering_integrity_under_any_buffer_size(
    nblocks, buffer_bytes, seed
):
    """Whatever the server buffer capacity, every byte written by the
    clients is on disk after sync, bit-exact."""
    expected = {}

    def main(ctx):
        topo = yield from rocpanda_init(ctx, 1)
        if topo.is_server:
            yield from PandaServer(
                ctx, topo, ServerConfig(buffer_bytes=buffer_bytes)
            ).run()
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("field", "element"))
        rng = np.random.default_rng(seed + topo.comm.rank)
        for i in range(nblocks):
            pane_id = topo.comm.rank * nblocks + i
            data = rng.random(3000)  # ~24 KB: rendezvous-sized
            w.register_pane(pane_id, 0, 3000)
            w.set_array("field", pane_id, data)
            expected[pane_id] = data.copy()
        yield from com.call_function("OUT.write_attribute", "W", None, "prop")
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()

    machine = Machine(make_testbox(nnodes=4, cpus_per_node=2), seed=seed)
    run_spmd(machine, 4, main)

    image = decode_file(machine.disk.open("prop_s0000.shdf").read())
    assert len(image) == len(expected)
    for pane_id, data in expected.items():
        np.testing.assert_array_equal(image.get(f"W/b{pane_id}/field").data, data)
