"""Property tests: tree collectives are payload-identical to the
linear executable spec (PR 7, S4).

For arbitrary communicator sizes, roots, and payloads, running the
same job under ``collective_algo = "tree"`` and ``"linear"`` must
return exactly the same values on every rank — the tree rewrite may
only change *virtual timing*, never data placement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import run_spmd


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=8), seed=seed)
    return run_spmd(machine, nprocs, main)


def run_both(size, body):
    """Run ``body(ctx, out)`` under each algorithm; return both outs."""
    results = []
    for algo in ("tree", "linear"):
        out = {}

        def main(ctx):
            ctx.world.collective_algo = algo
            yield from body(ctx, out)

        launch(size, main)
        results.append(out)
    return results


SIZES = st.sampled_from([1, 2, 3, 5, 8])
PAYLOADS = st.lists(
    st.one_of(st.integers(-999, 999), st.text(max_size=6)),
    min_size=8,
    max_size=8,
)


@given(SIZES, st.integers(0, 63), PAYLOADS)
@settings(max_examples=30, deadline=None)
def test_gather_tree_equals_linear(size, root_raw, payloads):
    root = root_raw % size

    def body(ctx, out):
        out[ctx.rank] = yield from ctx.world.gather(
            payloads[ctx.rank], root=root
        )

    tree, linear = run_both(size, body)
    assert tree == linear
    assert tree[root] == [payloads[r] for r in range(size)]


@given(SIZES, st.integers(0, 63), PAYLOADS)
@settings(max_examples=30, deadline=None)
def test_scatter_tree_equals_linear(size, root_raw, payloads):
    root = root_raw % size

    def body(ctx, out):
        items = payloads[:size] if ctx.rank == root else None
        out[ctx.rank] = yield from ctx.world.scatter(items, root=root)

    tree, linear = run_both(size, body)
    assert tree == linear
    assert tree == {r: payloads[r] for r in range(size)}


@given(SIZES, PAYLOADS)
@settings(max_examples=25, deadline=None)
def test_allgather_and_alltoall_tree_equals_linear(size, payloads):
    def body(ctx, out):
        ag = yield from ctx.world.allgather(payloads[ctx.rank])
        a2a = yield from ctx.world.alltoall(
            [(payloads[ctx.rank], d) for d in range(size)]
        )
        out[ctx.rank] = (ag, a2a)

    tree, linear = run_both(size, body)
    assert tree == linear
    for r in range(size):
        assert tree[r][0] == [payloads[i] for i in range(size)]
        assert tree[r][1] == [(payloads[s], r) for s in range(size)]


@given(SIZES, st.integers(0, 63), st.lists(st.text(max_size=4), min_size=8, max_size=8))
@settings(max_examples=25, deadline=None)
def test_reduce_noncommutative_tree_equals_linear(size, root_raw, parts):
    """Reduce with a non-commutative/non-associative op: both
    algorithms must produce the comm-rank-order left fold."""
    root = root_raw % size

    def body(ctx, out):
        out[ctx.rank] = yield from ctx.world.reduce(
            [parts[ctx.rank]], op=lambda a, b: a + b, root=root
        )

    tree, linear = run_both(size, body)
    assert tree == linear
    assert tree[root] == [parts[r] for r in range(size)]


def test_suite_equivalence_at_64_ranks():
    """One deterministic large case: the full collective suite at
    P = 64 (several tree levels deep, past every pow-2 boundary)."""
    size = 64

    def body(ctx, out):
        g = yield from ctx.world.gather(ctx.rank * 7, root=37)
        s = yield from ctx.world.scatter(
            list(range(0, size * 3, 3)) if ctx.rank == 11 else None, root=11
        )
        ag = yield from ctx.world.allgather((ctx.rank, "x"))
        red = yield from ctx.world.reduce(
            f"{ctx.rank:02d}", op=lambda a, b: a + b, root=5
        )
        out[ctx.rank] = (g, s, ag, red)

    tree, linear = run_both(size, body)
    assert tree == linear
    assert tree[11][1] == 33
    assert tree[5][3] == "".join(f"{r:02d}" for r in range(size))
