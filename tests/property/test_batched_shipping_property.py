"""Property test: two-phase batched shipping is an exact equivalent.

The batched Rocpanda client (one pre-encoded batch per snapshot) and
the per-block executable spec must be indistinguishable in fault-free
runs: same virtual finish time, same files, bit-identical bytes on
disk — across random block layouts, client/server counts, and
snapshot schedules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import PandaServer, RocpandaModule, rocpanda_init
from repro.roccom import AttributeSpec, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


def _run(batched, nservers, nclients, layout, nsnapshots, seed):
    """One rocpanda job; returns (virtual end time, {path: bytes})."""

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo, batched=batched))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("coords", "node", ncomp=3))
        w.declare_attribute(AttributeSpec("field", "element"))
        rng = np.random.default_rng(seed + topo.comm.rank)
        for i, (nnodes, nelems) in enumerate(layout[topo.comm.rank]):
            pane_id = topo.comm.rank * 16 + i
            w.register_pane(pane_id, nnodes, nelems)
            w.set_array("coords", pane_id, rng.random((nnodes, 3)))
            w.set_array("field", pane_id, rng.random(nelems))
        for snap in range(nsnapshots):
            yield from com.call_function(
                "OUT.write_attribute", "W", None, f"eq_{snap:02d}"
            )
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()

    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed)
    job = run_spmd(machine, nservers + nclients, main)
    files = {
        path: machine.disk.open(path).read()
        for path in machine.disk.listdir("eq_")
    }
    return job.wall_time, files


@st.composite
def layouts(draw):
    nservers = draw(st.integers(min_value=1, max_value=3))
    # The stride-based topology requires nclients >= nservers (enforced
    # at rocpanda_init); only generate layouts the contract admits.
    nclients = draw(st.integers(min_value=nservers, max_value=4))
    layout = [
        [
            (
                draw(st.integers(min_value=1, max_value=600)),
                draw(st.integers(min_value=1, max_value=4000)),
            )
            for _ in range(draw(st.integers(min_value=1, max_value=4)))
        ]
        for _ in range(nclients)
    ]
    return nservers, nclients, layout


@given(
    layouts(),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=12, deadline=None)
def test_batched_shipping_is_bit_identical(shape, nsnapshots, seed):
    nservers, nclients, layout = shape
    t_batched, files_batched = _run(
        True, nservers, nclients, layout, nsnapshots, seed
    )
    t_perblock, files_perblock = _run(
        False, nservers, nclients, layout, nsnapshots, seed
    )
    # Same virtual schedule, to the bit — the batched path replays the
    # per-block wire sequence event for event.
    assert t_batched == t_perblock
    # Same file set, same bytes.
    assert files_batched.keys() == files_perblock.keys()
    assert files_batched
    for path in files_batched:
        assert files_batched[path] == files_perblock[path]
    # And the files decode to the data the clients registered.
    for path, blob in files_batched.items():
        image = decode_file(blob)
        assert len(image) > 0
