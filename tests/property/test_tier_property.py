"""Property test: burst-tier final disk images are bit-identical to direct.

For arbitrary write schedules (appends of arbitrary sizes across
several paths, interleaved truncates and settle pauses) and arbitrary
tier capacities — including capacities small enough to force watermark
eviction and synchronous spill — the final on-disk image on the
*backing* disk under ``tier="burst"`` must equal, byte for byte, the
image a direct run of the same schedule produces.  The tier may change
*when* bytes become durable, never *what* becomes durable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.fs import BurstBufferTier, NFSModel, TierConfig, WriteCoalescer


@st.composite
def schedules(draw):
    """A list of (op, path_index, payload) steps over up to 4 paths."""
    nsteps = draw(st.integers(min_value=1, max_value=12))
    steps = []
    for i in range(nsteps):
        op = draw(st.sampled_from(["append", "append", "append", "truncate", "pause"]))
        path = draw(st.integers(min_value=0, max_value=3))
        if op == "append":
            size = draw(st.integers(min_value=1, max_value=5000))
            fill = 32 + (7 * i + path) % 90  # deterministic, path-varied
            steps.append(("append", path, bytes([fill]) * size))
        else:
            steps.append((op, path, b""))
    return steps


def _run_schedule(schedule, tier_capacity=None):
    """Execute the schedule; return the final backing-disk image."""
    env = Environment()
    backing = NFSModel(env)
    if tier_capacity is None:
        fs = backing
    else:
        fs = BurstBufferTier(
            env, backing,
            TierConfig(capacity_bytes=tier_capacity, drain_chunk_bytes=1024),
        )

    def main():
        files = {}
        for op, path_idx, payload in schedule:
            path = f"f{path_idx}"
            if op == "pause":
                yield env.sleep(0.01)
                continue
            if path not in files:
                yield from fs.meta_op(None)
                files[path] = fs.disk.create(path, exist_ok=True)
            if op == "truncate":
                files[path].truncate()
                continue
            c = WriteCoalescer(fs, files[path], node=None)
            c.add(payload)
            yield from c.flush()
        barrier = getattr(fs, "drain_barrier", None)
        if barrier is not None:
            yield from barrier()

    env.process(main(), name="schedule")
    env.run()
    if tier_capacity is not None:
        assert fs.backlog_bytes == 0
        assert fs.journal.validate(backing.disk) == []
    return {p: backing.disk.open(p).read() for p in backing.disk.listdir()}


@given(
    schedules(),
    st.sampled_from([512, 2_000, 8_000, 64_000, 1 << 20]),
)
@settings(max_examples=60, deadline=None)
def test_burst_image_bit_identical_to_direct(schedule, capacity):
    direct = _run_schedule(schedule, tier_capacity=None)
    burst = _run_schedule(schedule, tier_capacity=capacity)
    assert burst == direct


@given(schedules())
@settings(max_examples=30, deadline=None)
def test_tiny_tier_forces_eviction_and_still_matches(schedule):
    """A tier smaller than single appends must spill/evict constantly —
    and still end bit-identical."""
    direct = _run_schedule(schedule, tier_capacity=None)
    burst = _run_schedule(schedule, tier_capacity=512)
    assert burst == direct
