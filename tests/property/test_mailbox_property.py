"""Property-based equivalence of the two mailbox matchers.

:class:`repro.vmpi.mailbox.Mailbox` (indexed) and
:class:`~repro.vmpi.mailbox.LinearScanMailbox` (the original list-scan
reference) must implement *identical* matching semantics — same
envelope returned, in the same order, for every interleaving of
deliveries, consuming receives, non-consuming probes, and pending
waiters, wildcards included.  These tests drive both implementations
with the same randomly generated operation sequence and compare every
observable after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.vmpi.datatypes import ANY_SOURCE, ANY_TAG, Envelope
from repro.vmpi.mailbox import LinearScanMailbox, Mailbox

_SOURCES = st.integers(min_value=0, max_value=3)
_TAGS = st.integers(min_value=0, max_value=3)
_Q_SOURCES = st.one_of(st.just(ANY_SOURCE), _SOURCES)
_Q_TAGS = st.one_of(st.just(ANY_TAG), _TAGS)

#: One mailbox operation: (kind, source, tag).
_OPS = st.one_of(
    st.tuples(st.just("deliver"), _SOURCES, _TAGS),
    st.tuples(st.just("take"), _Q_SOURCES, _Q_TAGS),
    st.tuples(st.just("find"), _Q_SOURCES, _Q_TAGS),
    st.tuples(st.just("get"), _Q_SOURCES, _Q_TAGS),
    st.tuples(st.just("peek"), _Q_SOURCES, _Q_TAGS),
)


def _envelope(src: int, tag: int, seq: int) -> Envelope:
    # The payload is a unique serial number: envelope identity.
    return Envelope(
        comm_id=0, src=src, dst=0, tag=tag,
        payload=seq, nbytes=8, mode="eager", seq=seq,
    )


def _payload(envelope):
    return None if envelope is None else envelope.payload


def _event_state(event):
    """Observable state of a waiter event: untriggered, or the payload."""
    if not event.triggered:
        return "pending"
    return _payload(event.value)


@given(st.lists(_OPS, max_size=60))
@settings(max_examples=300, deadline=None)
def test_indexed_matches_reference_step_by_step(ops):
    env = Environment()
    indexed = Mailbox(env)
    reference = LinearScanMailbox(env)
    events = []  # (indexed_event, reference_event) pairs
    seq = 0

    for kind, source, tag in ops:
        if kind == "deliver":
            # Two distinct Envelope objects with the same identity: a
            # consuming take must not leave an alias in the other box.
            indexed.deliver(_envelope(source, tag, seq))
            reference.deliver(_envelope(source, tag, seq))
            seq += 1
        elif kind == "take":
            assert _payload(indexed.take(source, tag)) == _payload(
                reference.take(source, tag)
            )
        elif kind == "find":
            assert _payload(indexed.find(source, tag)) == _payload(
                reference.find(source, tag)
            )
        elif kind == "get":
            events.append(
                (indexed.get_matching(source, tag), reference.get_matching(source, tag))
            )
        else:  # peek
            events.append(
                (indexed.peek_matching(source, tag), reference.peek_matching(source, tag))
            )

        # After every operation the observable state must be identical:
        # queue content in arrival order, and each waiter's outcome.
        assert len(indexed) == len(reference)
        assert [e.payload for e in indexed.items] == [
            e.payload for e in reference.items
        ]
        for ie, re_ in events:
            assert _event_state(ie) == _event_state(re_)


@given(st.lists(_OPS, max_size=60))
@settings(max_examples=100, deadline=None)
def test_fixpoint_invariant_holds(ops):
    """No pending waiter ever matches a queued envelope (both impls)."""
    env = Environment()
    boxes = [Mailbox(env), LinearScanMailbox(env)]
    seq = 0
    for kind, source, tag in ops:
        for box in boxes:
            if kind == "deliver":
                box.deliver(_envelope(source, tag, seq))
            elif kind == "take":
                box.take(source, tag)
            elif kind == "find":
                box.find(source, tag)
            elif kind == "get":
                box.get_matching(source, tag)
            else:
                box.peek_matching(source, tag)
        seq += kind == "deliver"
        for box in boxes:
            for waiter in box._waiters:
                if waiter.event.triggered:
                    continue
                assert box.find(waiter.source, waiter.tag) is None
